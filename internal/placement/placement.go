// Package placement inverts the paper's deployment assumption: instead of
// sampling sensor positions uniformly at random (Section 2), it *chooses*
// them — lazy-greedy submodular maximization of the K-of-M detection
// probability over a candidate grid, the design-side question "where do my
// N sensors go".
//
// The objective P[detect] is estimated by a deterministic Monte Carlo
// evaluator: a fixed panel of target tracks is drawn once, and for every
// (sensor class, candidate cell) pair the per-trial report count is
// precomputed from its own RNG stream. Stream identity is a pure function
// of (trial, channel) — Philox O(1)-seek streams under field.SchemePhilox,
// DeriveSeed reseeds under field.SchemeLegacy — so results are
// bit-identical at any worker count, the same contract internal/sim keeps.
// With the mission equal to the window (the paper's setting) the sliding
// K-of-M rule reduces to "total reports across M periods >= K", which
// makes a candidate's marginal gain a single O(Trials) array scan and the
// whole greedy run cheap enough for thousands of candidates.
//
// Heterogeneous fleets are first-class: each Class carries its own
// count/Rs/Pd budget and the greedy loop assigns whichever (class,
// candidate) pair has the best marginal gain next. Every result pairs the
// placed layout against the paper's uniform-random baseline on the same
// track panel, and reports the §6 false-alarm thresholds (union-bound and
// exact) for the placed fleet size.
package placement

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/groupdetect/gbd/internal/detect"
	"github.com/groupdetect/gbd/internal/falsealarm"
	"github.com/groupdetect/gbd/internal/field"
	"github.com/groupdetect/gbd/internal/geom"
	"github.com/groupdetect/gbd/internal/stats"
)

// ErrConfig reports an invalid placement configuration.
var ErrConfig = errors.New("placement: invalid configuration")

// Class is one homogeneous sub-fleet to place: Count sensors sharing a
// sensing range and detection probability (detect.SensorClass with a
// placement budget semantics).
type Class struct {
	// Count is how many sensors of this class the optimizer must place.
	Count int `json:"count"`
	// Rs is the class's sensing range in meters.
	Rs float64 `json:"rs"`
	// Pd is the class's in-range per-period detection probability.
	Pd float64 `json:"pd"`
}

// Config describes a placement problem.
type Config struct {
	// Base is the scenario: field, target kinematics, and the K-of-M rule.
	// Its N is the placement budget when Classes is nil (a single class
	// with Base.Rs and Base.Pd); with Classes set, N, Rs and Pd are
	// ignored in favor of the classes.
	Base detect.Params
	// Classes are the heterogeneous sub-fleets to place. Nil means one
	// class drawn from Base.
	Classes []Class
	// GridCols and GridRows shape the candidate lattice (cell centers of a
	// GridCols x GridRows grid over the field). 0 defaults to 32.
	GridCols int
	GridRows int
	// Trials sizes the Monte Carlo track panel (default 2000).
	Trials int
	// Seed makes the whole run reproducible.
	Seed int64
	// RNG selects the (seed, stream) -> draws scheme; both schemes are
	// deterministic, the counter-based one additionally O(1)-seekable.
	RNG field.RNGScheme
	// Workers bounds the precompute parallelism; 0 means GOMAXPROCS.
	// Results are bit-identical at any setting.
	Workers int
	// FalseAlarmP, FAHorizon and FABudget parameterize the §6 report
	// thresholds attached to the result (defaults 1e-4, 1440, 0.01 — the
	// design-workflow defaults).
	FalseAlarmP float64
	FAHorizon   int
	FABudget    float64
}

// withDefaults resolves defaults and validates; total is the fleet size.
func (c Config) withDefaults() (Config, int, error) {
	if c.GridCols == 0 {
		c.GridCols = 32
	}
	if c.GridRows == 0 {
		c.GridRows = 32
	}
	if c.GridCols < 1 || c.GridRows < 1 {
		return c, 0, fmt.Errorf("grid %dx%d must be at least 1x1: %w", c.GridCols, c.GridRows, ErrConfig)
	}
	if c.Trials == 0 {
		c.Trials = 2000
	}
	if c.Trials < 1 {
		return c, 0, fmt.Errorf("trials = %d must be positive: %w", c.Trials, ErrConfig)
	}
	if c.Workers < 0 {
		return c, 0, fmt.Errorf("workers = %d must be >= 0: %w", c.Workers, ErrConfig)
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if err := c.RNG.Validate(); err != nil {
		return c, 0, fmt.Errorf("%w: %w", ErrConfig, err)
	}
	if c.FalseAlarmP == 0 {
		c.FalseAlarmP = 1e-4
	}
	if c.FalseAlarmP < 0 || c.FalseAlarmP > 1 {
		return c, 0, fmt.Errorf("false alarm probability %v: %w", c.FalseAlarmP, ErrConfig)
	}
	if c.FAHorizon == 0 {
		c.FAHorizon = 1440
	}
	if c.FABudget == 0 {
		c.FABudget = 0.01
	}
	if len(c.Classes) == 0 {
		c.Classes = []Class{{Count: c.Base.N, Rs: c.Base.Rs, Pd: c.Base.Pd}}
	}
	total := 0
	for i, cl := range c.Classes {
		if cl.Count < 0 {
			return c, 0, fmt.Errorf("class %d count = %d: %w", i, cl.Count, ErrConfig)
		}
		p := c.Base
		p.N, p.Rs, p.Pd = max(cl.Count, 1), cl.Rs, cl.Pd
		if err := p.Validate(); err != nil {
			return c, 0, fmt.Errorf("class %d: %w", i, err)
		}
		total += cl.Count
	}
	if total < 1 {
		return c, 0, fmt.Errorf("placement budget is zero sensors: %w", ErrConfig)
	}
	if nCands := c.GridCols * c.GridRows; total > nCands {
		return c, 0, fmt.Errorf("budget %d exceeds the %d candidate cells: %w", total, nCands, ErrConfig)
	}
	// Validate the shared scenario at the full fleet size.
	p := c.Base
	p.N = total
	if err := p.Validate(); err != nil {
		return c, 0, err
	}
	return c, total, nil
}

// Validate checks the configuration without running it.
func (c Config) Validate() error {
	_, _, err := c.withDefaults()
	return err
}

// Placement is one placed sensor, in selection order.
type Placement struct {
	// Pos is the chosen candidate cell center.
	Pos geom.Point `json:"pos"`
	// Class indexes Config.Classes.
	Class int `json:"class"`
	// Gain is the marginal detection-probability gain this sensor
	// contributed when it was selected.
	Gain float64 `json:"gain"`
}

// Comparison quantifies the placed layout against the paper's
// uniform-random deployment baseline at equal N on the same track panel.
type Comparison struct {
	// PlacedProb is the placed layout's Monte Carlo detection probability
	// with its 95% Wilson interval.
	PlacedProb float64        `json:"placed_prob"`
	PlacedCI   stats.Interval `json:"placed_ci"`
	// UniformProb is the uniform-random baseline on the same tracks (a
	// paired estimate: only the deployment channel differs).
	UniformProb float64        `json:"uniform_prob"`
	UniformCI   stats.Interval `json:"uniform_ci"`
	// UniformAnalysis is the analytical M-S-approach probability for the
	// same fleet under uniform deployment (MSApproachMixed).
	UniformAnalysis float64 `json:"uniform_analysis"`
	// AbsGain = PlacedProb - UniformProb; RelGain = AbsGain/UniformProb.
	AbsGain float64 `json:"abs_gain"`
	RelGain float64 `json:"rel_gain"`
}

// Result is a solved placement.
type Result struct {
	// Sensors is the placed layout in greedy selection order.
	Sensors []Placement `json:"sensors"`
	// VsUniform compares the layout against uniform random deployment.
	VsUniform Comparison `json:"vs_uniform"`
	// Trials and Candidates echo the problem size.
	Trials     int `json:"trials"`
	Candidates int `json:"candidates"`
	// Evals counts marginal-gain evaluations; LazyHits counts evaluations
	// the lazy priority queue avoided (candidates whose cached upper bound
	// already settled a selection round).
	Evals    int64 `json:"evals"`
	LazyHits int64 `json:"lazy_hits"`
	// KMin and KMinExact are the §6 report thresholds for the placed fleet
	// size under the configured false-alarm model: the union bound and the
	// exact scan-statistic value (0 when the exact chain is intractable).
	KMin      int `json:"k_min"`
	KMinExact int `json:"k_min_exact"`
}

// Place solves the placement problem.
func Place(cfg Config) (*Result, error) {
	return PlaceCtx(context.Background(), cfg)
}

// PlaceCtx is Place under a context: cancellation unwinds the precompute
// and the greedy loop within a bounded amount of work. A run that
// completes is bit-identical to one under Place.
func PlaceCtx(ctx context.Context, cfg Config) (*Result, error) {
	cfg, total, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eng, err := newEngine(ctx, cfg, total)
	if err != nil {
		return nil, err
	}
	res, err := eng.run(ctx)
	if err != nil {
		return nil, err
	}
	evalsTotal.Add(uint64(res.Evals))
	lazyHitsTotal.Add(uint64(res.LazyHits))
	return res, nil
}

// parallelStripe runs fn(w) on workers goroutines; fn is expected to
// process the stripe i = w, w+workers, w+2*workers, ... of some index
// space, writing only to its own rows, so the result is independent of
// the worker count.
func parallelStripe(workers int, fn func(w int) error) error {
	if workers <= 1 {
		return fn(0)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = fn(w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// faModel builds the §6 false-alarm model for the placed fleet.
func (c Config) faModel(total int) falsealarm.Model {
	return falsealarm.Model{N: total, Pf: c.FalseAlarmP, M: c.Base.M}
}
