package placement

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/groupdetect/gbd/internal/detect"
	"github.com/groupdetect/gbd/internal/field"
)

// testConfig is a fast-but-real scenario: the ONR geometry with a reduced
// panel and grid so the whole suite stays in the sub-second range.
func testConfig() Config {
	p := detect.Defaults()
	p.N = 40
	return Config{
		Base:     p,
		GridCols: 16, GridRows: 16,
		Trials: 400,
		Seed:   1,
	}
}

func TestPlaceBeatsUniform(t *testing.T) {
	for _, scheme := range []field.RNGScheme{field.SchemeLegacy, field.SchemePhilox} {
		cfg := testConfig()
		cfg.RNG = scheme
		res, err := Place(cfg)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if len(res.Sensors) != 40 {
			t.Fatalf("%v: placed %d sensors, want 40", scheme, len(res.Sensors))
		}
		c := res.VsUniform
		if c.PlacedProb < c.UniformProb {
			t.Errorf("%v: placed %.4f < uniform %.4f — optimizer loses to random",
				scheme, c.PlacedProb, c.UniformProb)
		}
		if c.AbsGain != c.PlacedProb-c.UniformProb {
			t.Errorf("%v: AbsGain %.6f inconsistent", scheme, c.AbsGain)
		}
		if c.UniformAnalysis <= 0 || c.UniformAnalysis > 1 {
			t.Errorf("%v: UniformAnalysis = %v", scheme, c.UniformAnalysis)
		}
		// The paired uniform baseline should agree with the analytical
		// model to Monte Carlo accuracy.
		if math.Abs(c.UniformProb-c.UniformAnalysis) > 0.1 {
			t.Errorf("%v: uniform sim %.4f vs analysis %.4f disagree beyond MC noise",
				scheme, c.UniformProb, c.UniformAnalysis)
		}
		if res.KMin < 1 || res.KMinExact < 1 || res.KMinExact > res.KMin {
			t.Errorf("%v: kmin=%d kmin_exact=%d", scheme, res.KMin, res.KMinExact)
		}
		if res.Evals <= 0 || res.LazyHits <= 0 {
			t.Errorf("%v: evals=%d lazy_hits=%d — lazy queue not engaged", scheme, res.Evals, res.LazyHits)
		}
	}
}

// plainGreedy is the reference O(rounds * patterns * trials)
// implementation: every round re-evaluates every usable pattern and picks
// the best under the same (gain, pattern index) order the heap uses.
func plainGreedy(e *engine) []int {
	nCands := len(e.cands)
	nPatterns := len(e.cfg.Classes) * nCands
	cur := make([]int32, e.cfg.Trials)
	remaining := make([]int, len(e.cfg.Classes))
	for i, cl := range e.cfg.Classes {
		remaining[i] = cl.Count
	}
	candUsed := make([]bool, nCands)
	var picks []int
	for len(picks) < e.total {
		best, bestGain := -1, int32(-1)
		for j := 0; j < nPatterns; j++ {
			if candUsed[j%nCands] || remaining[j/nCands] == 0 {
				continue
			}
			if g := e.marginalGain(j, cur); g > bestGain {
				best, bestGain = j, g
			}
		}
		row := e.counts[best*e.cfg.Trials : (best+1)*e.cfg.Trials]
		for t := range cur {
			cur[t] += int32(row[t])
		}
		candUsed[best%nCands] = true
		remaining[best/nCands]--
		picks = append(picks, best)
	}
	return picks
}

func TestLazyGreedyMatchesPlainGreedy(t *testing.T) {
	cases := []Config{
		// K=1: the objective is a genuine coverage function (submodular),
		// so lazy and plain greedy provably coincide.
		func() Config {
			c := testConfig()
			c.Base.K = 1
			c.Base.N = 12
			return c
		}(),
		// The paper's K=5 rule on a mixed fleet (fixed seed instance).
		{
			Base: detect.Defaults().WithN(12),
			Classes: []Class{
				{Count: 8, Rs: 1000, Pd: 0.9},
				{Count: 4, Rs: 2000, Pd: 0.7},
			},
			GridCols: 10, GridRows: 10,
			Trials: 300,
			Seed:   7,
		},
	}
	for i, cfg := range cases {
		res, err := Place(cfg)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		full, total, err := cfg.withDefaults()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		eng, err := newEngine(context.Background(), full, total)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		picks := plainGreedy(eng)
		if len(picks) != len(res.Sensors) {
			t.Fatalf("case %d: %d vs %d selections", i, len(picks), len(res.Sensors))
		}
		nCands := full.GridCols * full.GridRows
		for s, j := range picks {
			got := res.Sensors[s]
			if got.Class != j/nCands || got.Pos != eng.cands[j%nCands] {
				t.Fatalf("case %d: selection %d differs: lazy (class %d, %v) vs plain (class %d, %v)",
					i, s, got.Class, got.Pos, j/nCands, eng.cands[j%nCands])
			}
		}
	}
}

// bruteForceBest evaluates every size-`budget` candidate subset exactly
// and returns the best detected-trial count.
func bruteForceBest(e *engine, budget int) int {
	nCands := len(e.cands)
	cur := make([]int32, e.cfg.Trials)
	k := int32(e.cfg.Base.K)
	best := 0
	subset := make([]int, budget)
	var walk func(start, depth int)
	walk = func(start, depth int) {
		if depth == budget {
			detected := 0
			for _, c := range cur {
				if c >= k {
					detected++
				}
			}
			if detected > best {
				best = detected
			}
			return
		}
		for cand := start; cand < nCands; cand++ {
			row := e.counts[cand*e.cfg.Trials : (cand+1)*e.cfg.Trials]
			for t := range cur {
				cur[t] += int32(row[t])
			}
			subset[depth] = cand
			walk(cand+1, depth+1)
			for t := range cur {
				cur[t] -= int32(row[t])
			}
		}
	}
	walk(0, 0)
	return best
}

func TestGreedyNearOptimalOnBruteForceableInstances(t *testing.T) {
	// Tiny single-class instances where exhaustive search is feasible:
	// 5x5 grid, budget 3 -> C(25,3) = 2300 subsets.
	for _, k := range []int{1, 2} {
		p := detect.Defaults()
		p.N = 3
		p.K = k
		p.Rs = 3000 // widen sensing so a 3-sensor fleet detects something
		cfg := Config{Base: p, GridCols: 5, GridRows: 5, Trials: 250, Seed: 3}
		res, err := Place(cfg)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		full, total, err := cfg.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		eng, err := newEngine(context.Background(), full, total)
		if err != nil {
			t.Fatal(err)
		}
		opt := bruteForceBest(eng, total)
		got := int(math.Round(res.VsUniform.PlacedProb * float64(cfg.Trials)))
		if opt == 0 {
			t.Fatalf("K=%d: degenerate instance, OPT=0", k)
		}
		// Greedy on a monotone submodular objective (K=1 exactly; K=2 on
		// this fixed-seed instance) guarantees (1-1/e)*OPT.
		bound := (1 - 1/math.E) * float64(opt)
		if float64(got) < bound {
			t.Errorf("K=%d: greedy %d < (1-1/e)*OPT = %.2f (OPT %d)", k, got, bound, opt)
		}
	}
}

func TestBitIdenticalAcrossWorkers(t *testing.T) {
	for _, scheme := range []field.RNGScheme{field.SchemeLegacy, field.SchemePhilox} {
		var baseline *Result
		for _, workers := range []int{1, 4, 0} { // 0 = GOMAXPROCS
			cfg := testConfig()
			cfg.Base.N = 15
			cfg.Trials = 250
			cfg.RNG = scheme
			cfg.Workers = workers
			res, err := Place(cfg)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", scheme, workers, err)
			}
			if baseline == nil {
				baseline = res
				continue
			}
			if !reflect.DeepEqual(baseline, res) {
				t.Errorf("%v: result at workers=%d differs from workers=1", scheme, workers)
			}
		}
	}
}

func TestSchemesDiffer(t *testing.T) {
	// The two schemes are different generators; identical results would
	// mean the scheme knob is not plumbed through.
	a, err := Place(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.RNG = field.SchemePhilox
	b, err := Place(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.VsUniform, b.VsUniform) {
		t.Error("legacy and philox runs produced identical comparisons")
	}
}

func TestPlaceCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PlaceCtx(ctx, testConfig()); !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Base.N = 0 },                     // zero budget
		func(c *Config) { c.GridCols, c.GridRows = 4, 4 },    // budget > candidates
		func(c *Config) { c.Trials = -1 },                    // bad trials
		func(c *Config) { c.Workers = -2 },                   // bad workers
		func(c *Config) { c.Classes = []Class{{Count: -1}} }, // bad class
		func(c *Config) { c.RNG = field.RNGScheme(9) },       // bad scheme
		func(c *Config) { c.FalseAlarmP = 2 },                // bad Pf
		func(c *Config) {
			c.Classes = []Class{{Count: 5, Rs: -1, Pd: 0.9}} // bad class Rs
		},
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMixedClassBudgets(t *testing.T) {
	cfg := Config{
		Base: detect.Defaults(),
		Classes: []Class{
			{Count: 10, Rs: 1000, Pd: 0.9},
			{Count: 5, Rs: 2500, Pd: 0.6},
		},
		GridCols: 12, GridRows: 12,
		Trials: 300,
		Seed:   2,
	}
	res, err := Place(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[int]int{}
	seen := map[[2]float64]bool{}
	for _, s := range res.Sensors {
		byClass[s.Class]++
		key := [2]float64{s.Pos.X, s.Pos.Y}
		if seen[key] {
			t.Fatalf("candidate cell %v placed twice", s.Pos)
		}
		seen[key] = true
	}
	if byClass[0] != 10 || byClass[1] != 5 {
		t.Errorf("per-class placements = %v, want 10 and 5", byClass)
	}
}
