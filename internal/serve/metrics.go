package serve

import "github.com/groupdetect/gbd/internal/obs"

// Metric handles are resolved once at package init (DESIGN.md §9 hot-path
// contract). The cache triple obeys hits + misses == lookups exactly: both
// are counted under the cache lock at lookup time, so the concurrent-
// correctness test can assert the identity under -race. dedup counts
// requests that joined an identical in-flight computation instead of
// recomputing (they are also cache misses — the identity still holds).
var (
	serveRequests = obs.Default.Counter("serve.requests")
	serveErrors   = obs.Default.Counter("serve.errors")

	cacheLookups   = obs.Default.Counter("serve.cache.lookups")
	cacheHits      = obs.Default.Counter("serve.cache.hits")
	cacheMisses    = obs.Default.Counter("serve.cache.misses")
	cacheEvictions = obs.Default.Counter("serve.cache.evictions")
	cacheEntries   = obs.Default.Gauge("serve.cache.entries")

	dedupFollowers = obs.Default.Counter("serve.dedup.followers")

	admitted         = obs.Default.Counter("serve.admitted")
	rejectedQueue    = obs.Default.Counter("serve.rejected.queue")
	rejectedDeadline = obs.Default.Counter("serve.rejected.deadline")
	queueDepth       = obs.Default.Gauge("serve.queue.depth")
	queueDepthMax    = obs.Default.Gauge("serve.queue.depth.max")
	inflight         = obs.Default.Gauge("serve.inflight")
	inflightMax      = obs.Default.Gauge("serve.inflight.max")

	serveLatency = obs.Default.Histogram("serve.latency.seconds", obs.SecondsBuckets())

	sweepStreams    = obs.Default.Counter("serve.sweep.streams")
	sweepRows       = obs.Default.Counter("serve.sweep.rows")
	sweepHeartbeats = obs.Default.Counter("serve.sweep.heartbeats")
)
