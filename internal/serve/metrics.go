package serve

import "github.com/groupdetect/gbd/internal/obs"

// Metric handles are resolved once at package init (DESIGN.md §9 hot-path
// contract). Cache lookups obey hits + misses + forwards == lookups
// exactly: every lookup is classified at its call site as exactly one of
// the three via the lookup* helpers below (a forward is a local miss
// satisfied by the key's owning replica), so the fleet-correctness tests
// can assert the identity at quiescence. dedup counts requests that
// joined an identical in-flight computation instead of recomputing (they
// are also cache misses — the identity still holds).
var (
	serveRequests = obs.Default.Counter("serve.requests")
	serveErrors   = obs.Default.Counter("serve.errors")

	cacheLookups   = obs.Default.Counter("serve.cache.lookups")
	cacheHits      = obs.Default.Counter("serve.cache.hits")
	cacheMisses    = obs.Default.Counter("serve.cache.misses")
	cacheEvictions = obs.Default.Counter("serve.cache.evictions")
	cacheEntries   = obs.Default.Gauge("serve.cache.entries")

	dedupFollowers = obs.Default.Counter("serve.dedup.followers")

	admitted         = obs.Default.Counter("serve.admitted")
	rejectedQueue    = obs.Default.Counter("serve.rejected.queue")
	rejectedDeadline = obs.Default.Counter("serve.rejected.deadline")
	queueDepth       = obs.Default.Gauge("serve.queue.depth")
	queueDepthMax    = obs.Default.Gauge("serve.queue.depth.max")
	inflight         = obs.Default.Gauge("serve.inflight")
	inflightMax      = obs.Default.Gauge("serve.inflight.max")

	serveLatency = obs.Default.Histogram("serve.latency.seconds", obs.SecondsBuckets())

	sweepStreams    = obs.Default.Counter("serve.sweep.streams")
	sweepRows       = obs.Default.Counter("serve.sweep.rows")
	sweepHeartbeats = obs.Default.Counter("serve.sweep.heartbeats")

	batchRequests = obs.Default.Counter("serve.batch.requests")
	batchItems    = obs.Default.Counter("serve.batch.items")

	peerForwards     = obs.Default.Counter("serve.peer.forwards")
	peerForwardFails = obs.Default.Counter("serve.peer.forward.failures")
	peerDeaths       = obs.Default.Counter("serve.peer.deaths")
)

// lookupHit / lookupMiss / lookupForward classify one cache lookup.
// Every get/getBytes call must be followed by exactly one of these, which
// is what keeps hits + misses + forwards == lookups an identity rather
// than an approximation.
func lookupHit()     { cacheLookups.Inc(); cacheHits.Inc() }
func lookupMiss()    { cacheLookups.Inc(); cacheMisses.Inc() }
func lookupForward() { cacheLookups.Inc(); peerForwards.Inc() }
