package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"strings"
	"testing"

	gbd "github.com/groupdetect/gbd"
)

func TestAnalyzeGolden(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, _, body := post(t, ts, "/v1/analyze", `{"scenario":{}}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	want, err := gbd.Analyze(gbd.Defaults(), gbd.MSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.DetectionProb != want.DetectionProb {
		t.Errorf("detection_prob = %v, want %v (bit-exact)", resp.DetectionProb, want.DetectionProb)
	}
	if math.Abs(resp.DetectionProb-0.780129) > 1e-6 {
		t.Errorf("detection_prob = %v, want the paper scenario's 0.780129", resp.DetectionProb)
	}
	if resp.Gh != want.Gh || resp.G != want.G {
		t.Errorf("gh/g = %d/%d, want %d/%d", resp.Gh, resp.G, want.Gh, want.G)
	}
	if resp.Scenario.N != 120 || resp.Scenario.K != 5 || resp.Scenario.M != 20 {
		t.Errorf("scenario echo wrong: %+v", resp.Scenario)
	}
	if resp.PMF != nil {
		t.Error("pmf should be omitted unless include_pmf is set")
	}
}

func TestAnalyzeVariants(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, _, body := post(t, ts, "/v1/analyze", `{"scenario":{},"options":{"include_pmf":true}}`)
	if code != http.StatusOK {
		t.Fatalf("include_pmf: status %d: %s", code, body)
	}
	var withPMF AnalyzeResponse
	if err := json.Unmarshal(body, &withPMF); err != nil {
		t.Fatal(err)
	}
	if len(withPMF.PMF) == 0 {
		t.Error("include_pmf response has no pmf")
	}

	code, _, body = post(t, ts, "/v1/analyze", `{"scenario":{},"h_nodes":2}`)
	if code != http.StatusOK {
		t.Fatalf("h_nodes: status %d: %s", code, body)
	}
	var nodes AnalyzeResponse
	if err := json.Unmarshal(body, &nodes); err != nil {
		t.Fatal(err)
	}
	want, err := gbd.AnalyzeNodes(gbd.Defaults(), 2, gbd.MSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if nodes.DetectionProb != want.DetectionProb || nodes.HNodes != 2 {
		t.Errorf("nodes analysis = %v (h=%d), want %v", nodes.DetectionProb, nodes.HNodes, want.DetectionProb)
	}
}

func TestDesignEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, _, body := post(t, ts, "/v1/design", `{"scenario":{},"target_prob":0.8}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp DesignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.K < 1 || resp.N < 1 {
		t.Fatalf("degenerate design: K=%d N=%d", resp.K, resp.N)
	}
	if resp.DetectionProb < 0.8 {
		t.Errorf("designed detection_prob = %v, want >= target 0.8", resp.DetectionProb)
	}
	if resp.Scenario.N != resp.N || resp.Scenario.K != resp.K {
		t.Errorf("scenario echo (N=%d K=%d) disagrees with design (N=%d K=%d)",
			resp.Scenario.N, resp.Scenario.K, resp.N, resp.K)
	}
}

func TestLatencyEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, _, body := post(t, ts, "/v1/latency", `{"scenario":{}}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp LatencyResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.P) != 20 || resp.FirstPeriod != 1 {
		t.Fatalf("CDF shape wrong: first=%d len=%d", resp.FirstPeriod, len(resp.P))
	}
	for i := 1; i < len(resp.P); i++ {
		if resp.P[i] < resp.P[i-1] {
			t.Errorf("CDF not monotone at %d: %v < %v", i, resp.P[i], resp.P[i-1])
		}
	}
	ana, err := gbd.Analyze(gbd.Defaults(), gbd.MSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.DetectionProb != resp.P[len(resp.P)-1] || math.Abs(resp.DetectionProb-ana.DetectionProb) > 1e-9 {
		t.Errorf("final CDF point %v should equal the detection probability %v", resp.DetectionProb, ana.DetectionProb)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, _, body := post(t, ts, "/v1/simulate", `{"scenario":{},"trials":200,"seed":1}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	want, err := gbd.Simulate(gbd.SimConfig{Params: gbd.Defaults(), Trials: 200, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.DetectionProb != want.DetectionProb || resp.Trials != 200 {
		t.Errorf("simulate = %v over %d trials, want %v (deterministic per seed)",
			resp.DetectionProb, resp.Trials, want.DetectionProb)
	}
	if resp.Faults != nil {
		t.Error("faults block should be omitted without fault injection")
	}

	code, _, body = post(t, ts, "/v1/simulate", `{"scenario":{},"trials":100,"seed":1,"dead_frac":0.3}`)
	if code != http.StatusOK {
		t.Fatalf("faulted: status %d: %s", code, body)
	}
	var faulted SimulateResponse
	if err := json.Unmarshal(body, &faulted); err != nil {
		t.Fatal(err)
	}
	if faulted.Faults == nil || faulted.Faults.MeanAliveFrac <= 0 || faulted.Faults.MeanAliveFrac >= 1 {
		t.Errorf("fault summary missing or implausible: %+v", faulted.Faults)
	}
}

func TestSweepStream(t *testing.T) {
	ts := httptest.NewServer(New(Config{SweepWorkers: 2}).Handler())
	defer ts.Close()
	code, _, body := post(t, ts, "/v1/sweep", `{"scenario":{},"axis":"n","values":[60,120,180]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	rows := parseRows(t, body)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	prev := -1.0
	for i, row := range rows {
		if row.Index != i {
			t.Fatalf("row %d out of order: index %d", i, row.Index)
		}
		if row.Error != "" || row.Analysis == nil {
			t.Fatalf("row %d not a success row: %+v", i, row)
		}
		// More sensors → higher detection probability.
		if *row.Analysis < prev {
			t.Errorf("analysis not increasing in n at row %d", i)
		}
		prev = *row.Analysis
	}
}

func TestSweepErrorRows(t *testing.T) {
	ts := httptest.NewServer(New(Config{SweepWorkers: 1}).Handler())
	defer ts.Close()
	// keep_going: the bad middle point becomes an error row, the rest of
	// the curve still renders.
	code, _, body := post(t, ts, "/v1/sweep",
		`{"scenario":{},"axis":"n","values":[60,-5,120],"keep_going":true}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	rows := parseRows(t, body)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[0].Error != "" || rows[2].Error != "" {
		t.Errorf("healthy points failed: %+v", rows)
	}
	if rows[1].Error == "" || rows[1].Analysis != nil {
		t.Errorf("bad point should be an error row: %+v", rows[1])
	}

	// Without keep_going, a single worker stops at the failure and the
	// tail is reported as skipped — still exactly one row per value.
	code, _, body = post(t, ts, "/v1/sweep",
		`{"scenario":{},"axis":"n","values":[60,-5,120]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	rows = parseRows(t, body)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[1].Error == "" {
		t.Errorf("failed point should carry its error: %+v", rows[1])
	}
	if !strings.Contains(rows[2].Error, "skipped") {
		t.Errorf("undispatched tail should be a skipped row: %+v", rows[2])
	}
}

func TestExperimentEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/experiments/kmin")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		dump, _ := httputil.DumpResponse(resp, true)
		t.Fatalf("status %d: %s", resp.StatusCode, dump)
	}
	var tbl TableResponse
	if err := json.NewDecoder(resp.Body).Decode(&tbl); err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "kmin" || len(tbl.Columns) == 0 || len(tbl.Rows) == 0 {
		t.Errorf("degenerate table: %+v", tbl)
	}

	notFound, err := http.Get(ts.URL + "/v1/experiments/nope")
	if err != nil {
		t.Fatal(err)
	}
	notFound.Body.Close()
	if notFound.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment: status %d, want 404", notFound.StatusCode)
	}

	bad, err := http.Get(ts.URL + "/v1/experiments/kmin?trials=-5")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("negative trials: status %d, want 400", bad.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Errorf("healthz status = %v", health["status"])
	}

	// Generate some traffic, then check the snapshot carries the serve
	// counters.
	post(t, ts, "/v1/analyze", `{"scenario":{}}`)
	post(t, ts, "/v1/analyze", `{"scenario":{}}`)
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"serve.requests", "serve.cache.hits", "serve.latency.seconds", "serve.admitted"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("metrics snapshot missing %q", name)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze: status %d, want 405", resp.StatusCode)
	}
}

func TestSweepIndexBase(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, _, body := post(t, ts, "/v1/sweep",
		`{"scenario":{},"axis":"n","values":[60,120],"index_base":7}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	rows := parseRows(t, body)
	if len(rows) != 2 || rows[0].Index != 7 || rows[1].Index != 8 {
		t.Fatalf("index_base not applied: %+v", rows)
	}

	// Error and skipped rows must carry the offset too: a coordinator
	// matches rows to its global grid purely by index.
	code, _, body = post(t, ts, "/v1/sweep",
		`{"scenario":{},"axis":"n","values":[-5,120],"index_base":3}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	rows = parseRows(t, body)
	if len(rows) != 2 || rows[0].Index != 3 || rows[1].Index != 4 {
		t.Fatalf("index_base missing on error/skipped rows: %+v", rows)
	}
	if rows[0].Error == "" || rows[1].Error == "" {
		t.Fatalf("expected error + skipped rows: %+v", rows)
	}

	code, _, body = post(t, ts, "/v1/sweep",
		`{"scenario":{},"axis":"n","values":[60],"index_base":-1}`)
	if code != http.StatusBadRequest {
		t.Fatalf("negative index_base: status %d: %s", code, body)
	}
}

func TestSweepHeartbeat(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	// A Monte Carlo point slow enough to span several 25ms heartbeat
	// periods: the stream must stay alive with {"hb":true} rows while the
	// point computes, then deliver the data row.
	code, _, body := post(t, ts, "/v1/sweep",
		`{"scenario":{},"axis":"n","values":[120],"trials":20000,"seed":1,"heartbeat_ms":25}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	hb := 0
	for _, line := range bytes.Split(body, []byte("\n")) {
		if isHeartbeatLine(line) {
			hb++
		}
	}
	if hb == 0 {
		t.Errorf("no heartbeat rows on a slow stream:\n%s", body)
	}
	rows := parseRows(t, body)
	if len(rows) != 1 || rows[0].Error != "" || rows[0].Simulation == nil {
		t.Fatalf("data row missing or broken among heartbeats: %+v", rows)
	}

	code, _, body = post(t, ts, "/v1/sweep",
		`{"scenario":{},"axis":"n","values":[60],"heartbeat_ms":-1}`)
	if code != http.StatusBadRequest {
		t.Fatalf("negative heartbeat_ms: status %d: %s", code, body)
	}
}

func TestSweepHeartbeatOptIn(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	// Heartbeats are opt-in: a plain sweep (no heartbeat_ms) must stream
	// result/error rows only, even when points are slow enough that an
	// always-on keep-alive would have fired many times. A naive NDJSON
	// consumer can therefore parse every line as a SweepRow.
	code, _, body := post(t, ts, "/v1/sweep",
		`{"scenario":{},"axis":"n","values":[100,120],"trials":20000,"seed":1}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	lines := 0
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		lines++
		if isHeartbeatLine(line) {
			t.Fatalf("heartbeat row leaked into a plain sweep stream: %s", line)
		}
		var row SweepRow
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("line %q is not a SweepRow: %v", line, err)
		}
	}
	if lines != 2 {
		t.Fatalf("plain stream has %d lines, want exactly one row per value (2):\n%s", lines, body)
	}
}

// isHeartbeatLine reports whether an NDJSON line is a keep-alive row.
func isHeartbeatLine(line []byte) bool {
	var hb Heartbeat
	return len(bytes.TrimSpace(line)) > 0 && json.Unmarshal(line, &hb) == nil && hb.HB
}

// parseRows splits an NDJSON body into SweepRows, skipping keep-alive
// heartbeat lines.
func parseRows(t *testing.T, body []byte) []SweepRow {
	t.Helper()
	var rows []SweepRow
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || isHeartbeatLine([]byte(line)) {
			continue
		}
		var row SweepRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rows
}
