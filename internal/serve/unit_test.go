package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.add("a", []byte("A"))
	c.add("b", []byte("B"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should be cached")
	}
	// a was just touched, so adding c evicts b (the LRU entry).
	c.add("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c should be cached")
	}
	if got := c.len(); got != 2 {
		t.Errorf("len = %d, want 2", got)
	}
}

func TestCacheLookupAccounting(t *testing.T) {
	// Lookups are classified at the call site (metrics.go): each helper
	// bumps lookups plus exactly one of hits/misses/forwards, so the
	// hits + misses + forwards == lookups identity holds by construction.
	lookups0 := cacheLookups.Value()
	hits0, misses0, fwd0 := cacheHits.Value(), cacheMisses.Value(), peerForwards.Value()
	lookupMiss()
	lookupHit()
	lookupForward()
	lookups := cacheLookups.Value() - lookups0
	hits := cacheHits.Value() - hits0
	misses := cacheMisses.Value() - misses0
	forwards := peerForwards.Value() - fwd0
	if lookups != 3 || hits != 1 || misses != 1 || forwards != 1 {
		t.Errorf("lookups/hits/misses/forwards = %d/%d/%d/%d, want 3/1/1/1", lookups, hits, misses, forwards)
	}
	if hits+misses+forwards != lookups {
		t.Errorf("hits+misses+forwards = %d, want == lookups %d", hits+misses+forwards, lookups)
	}
}

func TestCacheAliasSharesSlot(t *testing.T) {
	// The raw-body digest alias must ride its entry's LRU slot: attaching
	// it does not consume capacity, and eviction removes both indexes —
	// the PR-7 fast path leaked a second, independently-charged entry.
	c := newResultCache(2)
	c.add("a", []byte("A"))
	c.attachAlias("a", "raw-a")
	if got := c.len(); got != 1 {
		t.Fatalf("len after alias = %d, want 1 (alias must not hold a slot)", got)
	}
	if body, ok := c.get("raw-a"); !ok || string(body) != "A" {
		t.Fatalf("alias lookup = %q/%v, want A/true", body, ok)
	}
	// Fill the cache so "a" (the LRU entry) is evicted; the alias must go
	// with it rather than dangling or pinning the slot.
	c.add("b", []byte("B"))
	c.get("b")
	c.add("c", []byte("C"))
	c.get("c")
	c.add("d", []byte("D"))
	if _, ok := c.get("a"); ok {
		t.Error("a should have been evicted")
	}
	if _, ok := c.get("raw-a"); ok {
		t.Error("alias should have been evicted with its entry")
	}
	// Attaching to a missing key or with an empty alias is a no-op.
	c.attachAlias("nope", "x")
	c.attachAlias("c", "")
	if _, ok := c.get("x"); ok {
		t.Error("alias on a missing key should not exist")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.add("a", []byte("A"))
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache should never hit")
	}
}

func TestFlightDedup(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int64
	gate := make(chan struct{})
	const followers = 8
	var wg sync.WaitGroup
	leaderIn := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, err, shared := g.do("k", func() ([]byte, error) {
			calls.Add(1)
			close(leaderIn)
			<-gate
			return []byte("result"), nil
		})
		if err != nil || string(body) != "result" || shared {
			t.Errorf("leader: body=%q err=%v shared=%v", body, err, shared)
		}
	}()
	<-leaderIn // the flight is provably in progress
	sharedCount := atomic.Int64{}
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, err, shared := g.do("k", func() ([]byte, error) {
				calls.Add(1)
				return []byte("result"), nil
			})
			if err != nil || string(body) != "result" {
				t.Errorf("follower: body=%q err=%v", body, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Give the followers a moment to join the flight, then land it.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	// Every caller that joined while the leader ran shares its single
	// execution; stragglers that arrived after landing start a new one.
	if calls.Load() > 2 {
		t.Errorf("fn ran %d times, want at most 2 (one flight + stragglers)", calls.Load())
	}
	if sharedCount.Load() == 0 {
		t.Error("no follower shared the leader's flight")
	}
}

func TestAdmissionQueueBound(t *testing.T) {
	a := newAdmission(1, 2)
	ctx := context.Background()
	release, err := a.acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Two waiters fill the queue.
	type res struct {
		release func()
		err     error
	}
	waiters := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func() {
			r, err := a.acquire(ctx)
			waiters <- res{r, err}
		}()
	}
	// Wait until both are provably parked inside acquire.
	deadline := time.Now().Add(2 * time.Second)
	for a.queued.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never queued: queued = %d", a.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}
	// The third concurrent claim overflows the bound: immediate rejection.
	if _, err := a.acquire(ctx); err != ErrOverloaded {
		t.Errorf("overflow acquire: err = %v, want ErrOverloaded", err)
	}
	// A queued waiter whose deadline expires leaves with the ctx error.
	release()
	r1 := <-waiters
	if r1.err != nil {
		t.Fatalf("first waiter: %v", r1.err)
	}
	expired, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if _, err := a.acquire(expired); err != context.DeadlineExceeded {
		// The pool is still full (r1 holds it), so this must time out.
		t.Errorf("deadline acquire: err = %v, want DeadlineExceeded", err)
	}
	r1.release()
	r2 := <-waiters
	if r2.err != nil {
		t.Fatalf("second waiter: %v", r2.err)
	}
	r2.release()
}

func TestAdmissionRelease(t *testing.T) {
	a := newAdmission(2, 4)
	ctx := context.Background()
	var releases []func()
	for i := 0; i < 2; i++ {
		r, err := a.acquire(ctx)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, r)
	}
	for _, r := range releases {
		r()
	}
	// The pool is free again: a fresh claim succeeds immediately.
	done := make(chan error, 1)
	go func() {
		r, err := a.acquire(ctx)
		if err == nil {
			r()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("acquire blocked after all slots were released")
	}
}

func TestApplyAxis(t *testing.T) {
	base, err := Scenario{}.params()
	if err != nil {
		t.Fatal(err)
	}
	p, err := applyAxis(base, AxisN, 60)
	if err != nil || p.N != 60 {
		t.Errorf("AxisN: N = %d err = %v", p.N, err)
	}
	if _, err := applyAxis(base, AxisN, 60.5); err == nil {
		t.Error("fractional n should be rejected, not truncated")
	}
	if _, err := applyAxis(base, AxisK, 2.5); err == nil {
		t.Error("fractional k should be rejected")
	}
	p, err = applyAxis(base, AxisV, 5.5)
	if err != nil || p.V != 5.5 {
		t.Errorf("AxisV: V = %v err = %v", p.V, err)
	}
	if _, err := applyAxis(base, AxisPd, 1.5); err == nil {
		t.Error("pd out of range should be rejected")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	for name, got := range map[string]bool{
		"cache":        cfg.CacheEntries == 1024,
		"workers":      cfg.Workers >= 1,
		"queue":        cfg.QueueDepth == 4*cfg.Workers,
		"timeout":      cfg.RequestTimeout == 30*time.Second,
		"trials":       cfg.MaxTrials == 200000,
		"sweep points": cfg.MaxSweepPoints == 512,
		"sweepWorkers": cfg.SweepWorkers == 1,
	} {
		if !got {
			t.Errorf("default %s wrong: %+v", name, cfg)
		}
	}
	neg := Config{CacheEntries: -1}.withDefaults()
	if neg.CacheEntries != -1 {
		t.Errorf("negative CacheEntries should survive as disabled, got %d", neg.CacheEntries)
	}
}
