// The /v1/sweep handler: one scenario parameter swept over explicit
// values, executed through internal/sweep.Run (the same fault-tolerant
// engine behind gbd-experiments and gbd-faults) and streamed back as
// NDJSON rows in input order. Streams are not cached — they are cheap to
// recompute relative to holding arbitrarily large bodies — but they do
// hold one admission slot for their whole duration, so sweeps cannot
// starve interactive requests beyond the configured pool.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	gbd "github.com/groupdetect/gbd"
	"github.com/groupdetect/gbd/internal/detect"
	"github.com/groupdetect/gbd/internal/faults"
	"github.com/groupdetect/gbd/internal/sim"
	"github.com/groupdetect/gbd/internal/sweep"
)

// SweepRow is one NDJSON line of a /v1/sweep stream. Exactly one row is
// emitted per requested value, in input order: a successful point carries
// the analysis (and, with trials > 0, simulation) columns; a failed or
// skipped point carries Error instead.
type SweepRow struct {
	Index      int       `json:"index"`
	Axis       SweepAxis `json:"axis"`
	Value      float64   `json:"value"`
	Analysis   *float64  `json:"analysis,omitempty"`
	Simulation *float64  `json:"simulation,omitempty"`
	CILo       *float64  `json:"ci_lo,omitempty"`
	CIHi       *float64  `json:"ci_hi,omitempty"`
	Error      string    `json:"error,omitempty"`
}

// validateSweep checks the request envelope before any streaming starts,
// so envelope problems still surface as a proper 400.
func (s *Server) validateSweep(req SweepRequest) error {
	switch req.Axis {
	case AxisN, AxisV, AxisK, AxisM, AxisPd, AxisDeadFrac:
	default:
		return fmt.Errorf("axis = %q must be one of n, v, k, m, pd, dead_frac: %w", req.Axis, ErrRequest)
	}
	if len(req.Values) < 1 || len(req.Values) > s.cfg.MaxSweepPoints {
		return fmt.Errorf("values must hold between 1 and %d points, got %d: %w", s.cfg.MaxSweepPoints, len(req.Values), ErrRequest)
	}
	if req.Trials < 0 || req.Trials > s.cfg.MaxTrials {
		return fmt.Errorf("trials = %d must be in [0, %d]: %w", req.Trials, s.cfg.MaxTrials, ErrRequest)
	}
	if req.Retries != nil && *req.Retries < 0 {
		return fmt.Errorf("retries = %d must be >= 0: %w", *req.Retries, ErrRequest)
	}
	if req.RetryBackoffMS < 0 || req.PointTimeoutMS < 0 {
		return fmt.Errorf("retry_backoff_ms and point_timeout_ms must be >= 0: %w", ErrRequest)
	}
	if req.IndexBase < 0 {
		return fmt.Errorf("index_base = %d must be >= 0: %w", req.IndexBase, ErrRequest)
	}
	if req.HeartbeatMS < 0 {
		return fmt.Errorf("heartbeat_ms = %d must be >= 0: %w", req.HeartbeatMS, ErrRequest)
	}
	if _, err := s.resolveRNG(req.RNG); err != nil {
		return err
	}
	return nil
}

// heartbeatInterval resolves the stream's keep-alive period. Heartbeats
// are strictly opt-in: a stream emits `{"hb":true}` rows only when the
// request set heartbeat_ms, so a plain sweep stream carries result and
// error rows exclusively and naive consumers need no filtering.
func heartbeatInterval(req SweepRequest) time.Duration {
	if req.HeartbeatMS > 0 {
		return time.Duration(req.HeartbeatMS) * time.Millisecond
	}
	return 0
}

// sweepPolicy resolves the request's fault policy against the server
// defaults into sweep.Options.
func (s *Server) sweepPolicy(req SweepRequest) sweep.Options {
	opt := sweep.Options{
		Workers:      s.cfg.SweepWorkers,
		Retries:      s.cfg.Retries,
		Backoff:      s.cfg.RetryBackoff,
		PointTimeout: s.cfg.PointTimeout,
		Degrade:      req.KeepGoing,
	}
	if req.Retries != nil {
		opt.Retries = *req.Retries
	}
	if req.RetryBackoffMS > 0 {
		opt.Backoff = time.Duration(req.RetryBackoffMS) * time.Millisecond
	}
	if req.PointTimeoutMS > 0 {
		opt.PointTimeout = time.Duration(req.PointTimeoutMS) * time.Millisecond
	}
	return opt
}

// applyAxis returns the scenario at one sweep value. Integer axes reject
// fractional values instead of truncating them silently.
func applyAxis(p detect.Params, axis SweepAxis, v float64) (detect.Params, error) {
	intVal := func(name string) (int, error) {
		if v != math.Trunc(v) || math.Abs(v) > 1e9 {
			return 0, fmt.Errorf("%s = %v must be an integer: %w", name, v, ErrRequest)
		}
		return int(v), nil
	}
	switch axis {
	case AxisN:
		n, err := intVal("n")
		if err != nil {
			return p, err
		}
		p.N = n
	case AxisV:
		p.V = v
	case AxisK:
		k, err := intVal("k")
		if err != nil {
			return p, err
		}
		p.K = k
	case AxisM:
		m, err := intVal("m")
		if err != nil {
			return p, err
		}
		p.M = m
	case AxisPd:
		p.Pd = v
	case AxisDeadFrac:
		// The death fraction is folded in by sweepPoint, not the scenario.
	}
	return p, p.Validate()
}

// sweepPoint computes one row: the analytical detection probability at
// the point's scenario, plus a Monte Carlo column when trials > 0.
func (s *Server) sweepPoint(ctx context.Context, base detect.Params, req SweepRequest, i int, v float64) (SweepRow, error) {
	row := SweepRow{Index: req.IndexBase + i, Axis: req.Axis, Value: v}
	p, err := applyAxis(base, req.Axis, v)
	if err != nil {
		return row, err
	}
	opt := req.Options.msOptions()
	var ana *detect.MSResult
	if req.Axis == AxisDeadFrac {
		ana, err = detect.Degraded(p, v, 1, opt)
	} else {
		ana, err = gbd.AnalyzeCtx(ctx, p, opt)
	}
	if err != nil {
		return row, err
	}
	prob := ana.DetectionProb
	row.Analysis = &prob
	if req.Trials > 0 {
		scheme, err := s.resolveRNG(req.RNG)
		if err != nil {
			return row, err
		}
		cfg := sim.Config{Params: p, Trials: req.Trials, Seed: req.Seed, Workers: 1, RNG: scheme}
		if req.Axis == AxisDeadFrac {
			cfg.Faults = faults.Bernoulli{DeadFrac: v}
		}
		res, err := sim.RunCtx(ctx, cfg)
		if err != nil {
			return row, err
		}
		simProb, lo, hi := res.DetectionProb, res.CI.Lo, res.CI.Hi
		row.Simulation, row.CILo, row.CIHi = &simProb, &lo, &hi
	}
	return row, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.validateSweep(req); err != nil {
		s.writeError(w, err)
		return
	}
	base, err := req.Scenario.params()
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	release, err := s.adm.acquire(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()

	sweepStreams.Inc()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)

	// Points stream through a buffered channel as they complete (in any
	// order); the emitter below restores input order. The buffer holds
	// every point, so workers never block on a slow client.
	type indexed struct {
		i   int
		row SweepRow
	}
	ch := make(chan indexed, len(req.Values))
	var rep *sweep.Report[SweepRow]
	go func() {
		// rep is written before close(ch); the channel close is the
		// happens-before edge that publishes it to the emitter.
		rep, _ = sweep.Run(ctx, s.sweepPolicy(req), req.Values,
			func(ctx context.Context, i int, v float64) (SweepRow, error) {
				row, err := s.sweepPoint(ctx, base, req, i, v)
				if err != nil {
					return row, err
				}
				ch <- indexed{i, row}
				return row, nil
			})
		close(ch)
	}()

	enc := json.NewEncoder(w)
	emit := func(row SweepRow) {
		enc.Encode(row)
		sweepRows.Inc()
		if flusher != nil {
			flusher.Flush()
		}
	}
	// While no data row is ready, keep-alive heartbeats hold the stream
	// open through slow points: proxies and client idle timeouts see
	// bytes, and a sweep coordinator's stall detector can tell "worker
	// still computing" from "worker dead". Heartbeats only ever appear
	// between data rows (one goroutine writes), never inside one.
	hbLine, _ := json.Marshal(Heartbeat{HB: true})
	hbLine = append(hbLine, '\n')
	var hbC <-chan time.Time
	if d := heartbeatInterval(req); d > 0 {
		ticker := time.NewTicker(d)
		defer ticker.Stop()
		hbC = ticker.C
	}
	pending := make(map[int]SweepRow)
	next := 0
	for ch != nil {
		select {
		case ir, ok := <-ch:
			if !ok {
				ch = nil
				continue
			}
			pending[ir.i] = ir.row
			for {
				row, ok := pending[next]
				if !ok {
					break
				}
				emit(row)
				delete(pending, next)
				next++
			}
		case <-hbC:
			w.Write(hbLine)
			sweepHeartbeats.Inc()
			if flusher != nil {
				flusher.Flush()
			}
		}
	}

	// The sweep has landed. Emit the tail in order: successes that were
	// stuck behind a failed point, then an error row per failed point and
	// a skipped row per point the engine never dispatched — exactly one
	// row per requested value either way.
	failed := make(map[int]*sweep.PointError)
	for _, pe := range rep.Failed {
		failed[pe.Index] = pe
	}
	for ; next < len(req.Values); next++ {
		if row, ok := pending[next]; ok {
			emit(row)
			delete(pending, next)
			continue
		}
		row := SweepRow{Index: req.IndexBase + next, Axis: req.Axis, Value: req.Values[next]}
		switch {
		case failed[next] != nil:
			row.Error = failed[next].Err.Error()
		case ctx.Err() != nil:
			row.Error = "skipped: " + ctx.Err().Error()
		default:
			row.Error = "skipped: sweep stopped at an earlier failure"
		}
		emit(row)
	}
}
