package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// placeBody is a small, fast placement request shared by the tests.
const placeBody = `{"scenario":{"n":10},"grid_cols":8,"grid_rows":8,"trials":150,"seed":1}`

func TestPlaceEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, _, body := post(t, ts, "/v1/place", placeBody)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp PlaceResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Sensors) != 10 {
		t.Fatalf("placed %d sensors, want 10", len(resp.Sensors))
	}
	if resp.Scenario.N != 10 || resp.Candidates != 64 || resp.Trials != 150 {
		t.Errorf("echo wrong: n=%d candidates=%d trials=%d", resp.Scenario.N, resp.Candidates, resp.Trials)
	}
	if resp.PlacedProb < resp.UniformProb {
		t.Errorf("placed %.4f < uniform %.4f", resp.PlacedProb, resp.UniformProb)
	}
	if resp.KMin < 1 || resp.KMinExact < 1 || resp.KMinExact > resp.KMin {
		t.Errorf("k_min=%d k_min_exact=%d", resp.KMin, resp.KMinExact)
	}
	if len(resp.Classes) != 1 || resp.Classes[0].Count != 10 {
		t.Errorf("resolved classes = %+v", resp.Classes)
	}
}

func TestPlaceCanonicalizationAndCache(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, xc, first := post(t, ts, "/v1/place", placeBody)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, first)
	}
	if xc != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", xc)
	}
	// Same request, different field order and an explicitly spelled
	// default: must hit the same cache entry with the same bytes.
	reordered := `{"seed":1,"trials":150,"grid_rows":8,"grid_cols":8,"rng":"legacy","scenario":{"n":10}}`
	code, xc, second := post(t, ts, "/v1/place", reordered)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, second)
	}
	if xc != "hit" {
		t.Errorf("reordered request X-Cache = %q, want hit", xc)
	}
	if !bytes.Equal(first, second) {
		t.Error("cache hit returned different bytes than the miss that populated it")
	}
	// An equivalent explicit class list shares the key with the
	// scenario-n spelling.
	classes := `{"scenario":{"n":10},"classes":[{"count":10,"rs":1000,"pd":0.9}],"grid_cols":8,"grid_rows":8,"trials":150,"seed":1}`
	code, xc, third := post(t, ts, "/v1/place", classes)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, third)
	}
	if xc != "hit" || !bytes.Equal(first, third) {
		t.Errorf("explicit single class: X-Cache = %q, bytes equal = %v; want a hit with identical bytes",
			xc, bytes.Equal(first, third))
	}
	// A different seed must not share the entry.
	code, xc, _ = post(t, ts, "/v1/place", `{"scenario":{"n":10},"grid_cols":8,"grid_rows":8,"trials":150,"seed":2}`)
	if code != http.StatusOK || xc != "miss" {
		t.Errorf("seed=2: status %d X-Cache %q, want 200 miss", code, xc)
	}
}

func TestPlaceBatchBitIdentical(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, _, standalone := post(t, ts, "/v1/place", placeBody)
	if code != http.StatusOK {
		t.Fatalf("standalone: status %d: %s", code, standalone)
	}
	batch := `{"items":[{"op":"place","request":` + placeBody + `}]}`
	code, _, line := post(t, ts, "/v1/batch", batch)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, line)
	}
	if !bytes.Equal(standalone, line) {
		t.Errorf("batch line differs from standalone response:\n batch: %s\n alone: %s", line, standalone)
	}
}

func TestPlaceRequestErrors(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	cases := []struct {
		name, body string
		want       int
	}{
		{"unknown field", `{"scenario":{},"grid":9}`, http.StatusBadRequest},
		{"grid too large", `{"scenario":{},"grid_cols":4096}`, http.StatusBadRequest},
		{"budget exceeds cells", `{"scenario":{"n":100},"grid_cols":5,"grid_rows":5,"trials":50}`, http.StatusBadRequest},
		{"bad rng", `{"scenario":{},"rng":"xorshift"}`, http.StatusBadRequest},
		{"area cap", `{"scenario":{},"grid_cols":128,"grid_rows":128,"trials":200000}`, http.StatusRequestEntityTooLarge},
		{"bad class", `{"scenario":{},"classes":[{"count":5,"rs":-1,"pd":0.9}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, _, body := post(t, ts, "/v1/place", tc.body)
		if code != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, code, tc.want, body)
		}
	}
}

func TestDesignReportsExactK(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, _, body := post(t, ts, "/v1/design", `{"scenario":{},"target_prob":0.8}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp DesignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.KMinExact < 1 || resp.KMinExact > resp.K {
		t.Errorf("k_min_exact = %d, k = %d; want 1 <= exact <= union-bound k", resp.KMinExact, resp.K)
	}
}
