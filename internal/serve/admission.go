package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded reports that the admission queue is full; handlers map it
// to 429 Too Many Requests.
var ErrOverloaded = errors.New("serve: admission queue full")

// admission is the worker-pool admission controller: at most `workers`
// computations run concurrently and at most `depth` requests may be
// waiting for (or holding a claim on) a worker slot at once. A request
// beyond the queue bound is rejected immediately with ErrOverloaded (429)
// rather than piling up latency; a queued request whose context expires
// before a worker frees up leaves with the context error (503). This is
// the standard inference-stack shape: bounded queue in front of a bounded
// pool, load shedding at the edge.
type admission struct {
	depth  int64
	queued atomic.Int64
	slots  chan struct{}
}

// retryAfterSeconds estimates when a shed request is worth retrying:
// roughly one queue drain at one computation-second per worker
// (queued / workers), floored at 1s so the header is never zero and
// capped at 30s so a transient spike cannot park clients for minutes.
// It is deterministic in the admission state, so tests can pin it.
func (a *admission) retryAfterSeconds() int {
	sec := a.queued.Load() / int64(cap(a.slots))
	if sec < 1 {
		sec = 1
	}
	if sec > 30 {
		sec = 30
	}
	return int(sec)
}

// newAdmission builds a controller with the given pool size and queue
// bound (both >= 1).
func newAdmission(workers, depth int) *admission {
	return &admission{
		depth: int64(depth),
		slots: make(chan struct{}, workers),
	}
}

// acquire claims a worker slot, waiting in the bounded queue if the pool
// is busy. On success it returns the release function; the caller must
// invoke it exactly once when the computation finishes.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	n := a.queued.Add(1)
	if n > a.depth {
		a.queued.Add(-1)
		rejectedQueue.Inc()
		return nil, ErrOverloaded
	}
	queueDepth.Set(n)
	queueDepthMax.SetMax(n)
	defer func() {
		queueDepth.Set(a.queued.Add(-1))
	}()
	select {
	case a.slots <- struct{}{}:
		admitted.Inc()
		inflightMax.SetMax(inflight.Add(1))
		return func() {
			inflight.Add(-1)
			<-a.slots
		}, nil
	case <-ctx.Done():
		rejectedDeadline.Inc()
		return nil, ctx.Err()
	}
}
