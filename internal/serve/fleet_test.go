package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fleet is a set of in-process sharded replicas listening on real TCP
// ports (the peer URLs must be known before serve.New, so listeners come
// first).
type fleet struct {
	urls    []string
	servers []*Server
	https   []*http.Server
}

func startFleet(t *testing.T, n int, cfg Config) *fleet {
	t.Helper()
	f := &fleet{}
	var lns []net.Listener
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		f.urls = append(f.urls, "http://"+ln.Addr().String())
	}
	for i, ln := range lns {
		c := cfg
		c.Peers = append([]string(nil), f.urls...)
		c.Self = f.urls[i]
		if err := c.ValidatePeers(); err != nil {
			t.Fatal(err)
		}
		s := New(c)
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		f.servers = append(f.servers, s)
		f.https = append(f.https, hs)
	}
	t.Cleanup(func() {
		for _, hs := range f.https {
			hs.Close()
		}
	})
	return f
}

func fleetPost(url, path, body string) (int, []byte, error) {
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

// TestFleetBitIdentical is the fleet correctness proof: three sharded
// replicas under a concurrent mixed analyze/latency/batch workload must
// return, from every replica, bytes equal to a single unsharded
// instance; the fleet-wide cache accounting must balance exactly
// (hits + misses + forwards == lookups); and during the analyze-only
// phase no key may be computed by more than one replica.
func TestFleetBitIdentical(t *testing.T) {
	analyzeBodies := []string{
		`{"scenario":{}}`,
		`{"scenario":{"n":120}}`, // same key as the default spelling
		`{"scenario":{"n":100}}`,
		`{"scenario":{"n":140}}`,
		`{"scenario":{"v":5}}`,
		`{"scenario":{"k":4}}`,
		`{"scenario":{"m":15}}`,
		`{"scenario":{},"h_nodes":2}`,
	}
	latencyBodies := []string{
		`{"scenario":{}}`,
		`{"scenario":{"n":100}}`,
	}
	batchBodies := []string{
		`{"items":[{"op":"analyze","request":{"scenario":{"n":100}}},{"op":"latency","request":{"scenario":{}}}]}`,
		`{"items":[{"op":"sweep_point","request":{"scenario":{},"axis":"n","value":90,"index":3}},{"op":"analyze","request":{"scenario":{}}}]}`,
	}

	// Single-instance ground truth (its admissions land before the
	// snapshot below; obs counters are process-global).
	single := httptest.NewServer(New(Config{}).Handler())
	defer single.Close()
	truth := map[string][]byte{}
	collect := func(path string, bodies []string) {
		for _, b := range bodies {
			code, _, data := post(t, single, path, b)
			if code != http.StatusOK {
				t.Fatalf("single %s %s: status %d: %s", path, b, code, data)
			}
			truth[path+"|"+b] = data
		}
	}
	collect("/v1/analyze", analyzeBodies)
	collect("/v1/latency", latencyBodies)
	collect("/v1/batch", batchBodies)

	f := startFleet(t, 3, Config{Workers: 4, QueueDepth: 256})
	distinct := map[string]bool{}
	for _, b := range analyzeBodies {
		var req AnalyzeRequest
		if err := json.Unmarshal([]byte(b), &req); err != nil {
			t.Fatal(err)
		}
		_, key, err := f.servers[0].analyzeKey(req)
		if err != nil {
			t.Fatal(err)
		}
		distinct[key] = true
	}

	lookups0 := cacheLookups.Value()
	hits0, misses0, fwd0 := cacheHits.Value(), cacheMisses.Value(), peerForwards.Value()
	admitted0 := admitted.Value()

	// Phase 1: analyze-only, concurrent, round-robin across replicas.
	// Every canonical key must be computed exactly once fleet-wide: the
	// owner's singleflight is the dedup point for all three replicas.
	const phase1 = 48
	var wg sync.WaitGroup
	errs := make(chan error, phase1+60)
	for i := 0; i < phase1; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := analyzeBodies[i%len(analyzeBodies)]
			code, data, err := fleetPost(f.urls[i%3], "/v1/analyze", body)
			if err != nil {
				errs <- err
				return
			}
			if code != http.StatusOK {
				errs <- fmt.Errorf("replica %d analyze: status %d: %s", i%3, code, data)
				return
			}
			if want := truth["/v1/analyze|"+body]; !bytes.Equal(data, want) {
				errs <- fmt.Errorf("replica %d analyze %s: differs from single instance:\ngot  %q\nwant %q", i%3, body, data, want)
			}
		}()
	}
	wg.Wait()
	if got, want := admitted.Value()-admitted0, uint64(len(distinct)); got != want {
		t.Errorf("fleet admitted %d computations for %d distinct keys: some key was computed by more than one replica", got, want)
	}

	// Phase 2: mixed analyze/latency/batch, still concurrent.
	for i := 0; i < 60; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var path, body string
			switch i % 3 {
			case 0:
				path, body = "/v1/analyze", analyzeBodies[i%len(analyzeBodies)]
			case 1:
				path, body = "/v1/latency", latencyBodies[i%len(latencyBodies)]
			default:
				path, body = "/v1/batch", batchBodies[i%len(batchBodies)]
			}
			code, data, err := fleetPost(f.urls[i%3], path, body)
			if err != nil {
				errs <- err
				return
			}
			if code != http.StatusOK {
				errs <- fmt.Errorf("replica %d %s: status %d: %s", i%3, path, code, data)
				return
			}
			if want := truth[path+"|"+body]; !bytes.Equal(data, want) {
				errs <- fmt.Errorf("replica %d %s %s: differs from single instance:\ngot  %q\nwant %q", i%3, path, body, data, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Fleet-wide accounting at quiescence: exact, not approximate.
	lookups := cacheLookups.Value() - lookups0
	hits := cacheHits.Value() - hits0
	misses := cacheMisses.Value() - misses0
	forwards := peerForwards.Value() - fwd0
	if hits+misses+forwards != lookups {
		t.Errorf("fleet accounting broken: hits %d + misses %d + forwards %d != lookups %d", hits, misses, forwards, lookups)
	}
	if forwards == 0 {
		t.Error("three sharded replicas forwarded nothing: sharding is not active")
	}
}

// TestFleetPeerDeath: killing a replica re-hashes its keys onto the
// survivors with zero client-visible errors — the probing request that
// discovers the death falls back (re-route or local compute) and still
// answers 200.
func TestFleetPeerDeath(t *testing.T) {
	f := startFleet(t, 3, Config{Workers: 4, QueueDepth: 256, PeerCooldown: time.Hour})
	deaths0 := peerDeaths.Value()

	// Find bodies owned by replica 2 as seen from replica 0, so its death
	// is guaranteed to matter for the traffic below.
	var owned []string
	for n := 60; n < 200 && len(owned) < 4; n += 2 {
		body := fmt.Sprintf(`{"scenario":{"n":%d}}`, n)
		var req AnalyzeRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		_, key, err := f.servers[0].analyzeKey(req)
		if err != nil {
			t.Fatal(err)
		}
		if m, _, self := f.servers[0].peers.Route(key); !self && m == 2 {
			owned = append(owned, body)
		}
	}
	if len(owned) == 0 {
		t.Skip("hash split left replica 2 with no sampled keys (vanishingly unlikely)")
	}

	f.https[2].Close()
	for round := 0; round < 2; round++ {
		for _, body := range owned {
			code, data, err := fleetPost(f.urls[0], "/v1/analyze", body)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if code != http.StatusOK {
				t.Fatalf("round %d: status %d (peer death must never surface as an error): %s", round, code, data)
			}
		}
	}
	if peerDeaths.Value() == deaths0 {
		t.Error("dead replica was never detected")
	}
	// After the death is detected, keys re-route deterministically: the
	// dead member is out of every survivor's ring.
	for _, body := range owned {
		var req AnalyzeRequest
		json.Unmarshal([]byte(body), &req)
		_, key, _ := f.servers[0].analyzeKey(req)
		if m, _, _ := f.servers[0].peers.Route(key); m == 2 {
			t.Errorf("key still routed to the dead replica after detection")
		}
	}
}
