package serve

import "sync"

// flightGroup collapses concurrent computations of the same cache key into
// one execution (in-flight dedup, the singleflight pattern): the first
// request for a key becomes the leader and runs fn; requests arriving
// while it runs block on the leader's result instead of recomputing.
// Results are not retained after the flight lands — durable reuse is the
// result cache's job.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight computation.
type flightCall struct {
	done chan struct{}
	body []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn under key, deduplicating concurrent callers. It returns fn's
// result and whether this caller was a follower (shared someone else's
// execution). fn runs exactly once per flight; its error is delivered to
// every caller of that flight but never cached.
func (g *flightGroup) do(key string, fn func() ([]byte, error)) (body []byte, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		dedupFollowers.Inc()
		<-c.done
		return c.body, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.body, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.body, c.err, false
}
