// The /v1/batch handler: many analysis/simulation points in one request,
// answered as an NDJSON stream with one line per item in input order.
// Each line is bit-identical to the item's standalone /v1/* response — a
// batch item and the equivalent single request render through the same
// renderCompute path and read/populate the same cache keys, so warming
// the cache through one surface warms it for the other.
//
// The batch holds at most ONE admission slot (acquired only when some
// item actually computes locally), the same discipline as a sweep stream:
// a 256-item batch costs the pool one worker, not 256, and a shed batch
// is a single 429/503 with Retry-After before any line is written.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"github.com/groupdetect/gbd/internal/detect"
)

// BatchRequest is the /v1/batch body: an ordered list of operations.
type BatchRequest struct {
	Items []BatchItem `json:"items"`
}

// BatchItem is one batch operation: an op name and the op's standalone
// request body (the same JSON that POST /v1/<op> accepts; "sweep_point"
// takes a SweepPointRequest).
type BatchItem struct {
	Op      string          `json:"op"`
	Request json.RawMessage `json:"request"`
}

// SweepPointRequest is the "sweep_point" batch op: one point of a
// /v1/sweep grid as an individually cacheable item. Its rendered line is
// byte-identical to the SweepRow the streaming endpoint would emit for
// the same point, so a coordinator may fetch a shard as a batch and
// still merge rows byte-identically with a single-machine stream. Index
// is the campaign-global row index to echo (the stream's index_base + i).
type SweepPointRequest struct {
	Scenario Scenario       `json:"scenario"`
	Options  AnalyzeOptions `json:"options,omitempty"`
	Axis     SweepAxis      `json:"axis"`
	Value    float64        `json:"value"`
	Index    int            `json:"index,omitempty"`
	Trials   int            `json:"trials,omitempty"`
	Seed     int64          `json:"seed,omitempty"`
	RNG      string         `json:"rng,omitempty"`
}

// sweepPointCanonical is the fingerprinted form of a SweepPointRequest.
// Index participates: the row's bytes echo it, and cached bytes must be
// exact.
type sweepPointCanonical struct {
	Scenario scenarioEcho   `json:"scenario"`
	Options  AnalyzeOptions `json:"options"`
	Axis     SweepAxis      `json:"axis"`
	Value    float64        `json:"value"`
	Index    int            `json:"index"`
	Trials   int            `json:"trials"`
	RNG      string         `json:"rng,omitempty"`
}

// sweepPointKey validates a SweepPointRequest and returns its base
// parameters and cache key.
func (s *Server) sweepPointKey(req SweepPointRequest) (detect.Params, string, error) {
	var p detect.Params
	switch req.Axis {
	case AxisN, AxisV, AxisK, AxisM, AxisPd, AxisDeadFrac:
	default:
		return p, "", fmt.Errorf("axis = %q must be one of n, v, k, m, pd, dead_frac: %w", req.Axis, ErrRequest)
	}
	if req.Trials < 0 || req.Trials > s.cfg.MaxTrials {
		return p, "", fmt.Errorf("trials = %d must be in [0, %d]: %w", req.Trials, s.cfg.MaxTrials, ErrRequest)
	}
	if req.Index < 0 {
		return p, "", fmt.Errorf("index = %d must be >= 0: %w", req.Index, ErrRequest)
	}
	p, err := req.Scenario.params()
	if err != nil {
		return p, "", err
	}
	scheme, err := s.resolveRNG(req.RNG)
	if err != nil {
		return p, "", err
	}
	canon := sweepPointCanonical{
		Scenario: echoParams(p), Options: req.Options,
		Axis: req.Axis, Value: req.Value, Index: req.Index,
		Trials: req.Trials, RNG: canonRNG(scheme),
	}
	key, err := cacheKey("/v1/batch/sweep_point", canon, req.Seed)
	return p, key, err
}

// planItem resolves one batch item to its cache key and local compute.
// The compute closures are the standalone handlers' closures, so the
// rendered bytes and cache entries are shared with the /v1/* surface by
// construction.
func (s *Server) planItem(it BatchItem) (string, func(ctx context.Context) (any, error), error) {
	if len(it.Request) == 0 {
		return "", nil, fmt.Errorf("batch item %q missing request: %w", it.Op, ErrRequest)
	}
	switch it.Op {
	case "analyze":
		var req AnalyzeRequest
		if err := decodeBytes(it.Request, &req); err != nil {
			return "", nil, err
		}
		p, key, err := s.analyzeKey(req)
		if err != nil {
			return "", nil, err
		}
		return key, func(ctx context.Context) (any, error) { return s.computeAnalyze(ctx, p, req) }, nil
	case "design":
		var req DesignRequest
		if err := decodeBytes(it.Request, &req); err != nil {
			return "", nil, err
		}
		p, key, err := s.designKey(&req)
		if err != nil {
			return "", nil, err
		}
		return key, func(ctx context.Context) (any, error) { return s.computeDesign(ctx, p, req) }, nil
	case "latency":
		var req LatencyRequest
		if err := decodeBytes(it.Request, &req); err != nil {
			return "", nil, err
		}
		p, key, err := s.latencyKey(req)
		if err != nil {
			return "", nil, err
		}
		return key, func(ctx context.Context) (any, error) { return s.computeLatency(ctx, p, req) }, nil
	case "simulate":
		var req SimulateRequest
		if err := decodeBytes(it.Request, &req); err != nil {
			return "", nil, err
		}
		p, key, err := s.simulateKey(req)
		if err != nil {
			return "", nil, err
		}
		return key, func(ctx context.Context) (any, error) { return s.computeSimulate(ctx, p, req) }, nil
	case "infer":
		var req InferRequest
		if err := decodeBytes(it.Request, &req); err != nil {
			return "", nil, err
		}
		p, cfg, key, err := s.inferKey(req)
		if err != nil {
			return "", nil, err
		}
		return key, func(ctx context.Context) (any, error) { return s.computeInfer(ctx, p, req, cfg) }, nil
	case "place":
		var req PlaceRequest
		if err := decodeBytes(it.Request, &req); err != nil {
			return "", nil, err
		}
		cfg, classes, key, err := s.placeKey(req)
		if err != nil {
			return "", nil, err
		}
		return key, func(ctx context.Context) (any, error) { return s.computePlace(ctx, cfg, classes) }, nil
	case "sweep_point":
		var req SweepPointRequest
		if err := decodeBytes(it.Request, &req); err != nil {
			return "", nil, err
		}
		p, key, err := s.sweepPointKey(req)
		if err != nil {
			return "", nil, err
		}
		// sweepPoint renders through the same SweepRow the streaming
		// endpoint marshals, with IndexBase carrying the global index.
		sreq := SweepRequest{
			Scenario: req.Scenario, Options: req.Options, Axis: req.Axis,
			Trials: req.Trials, Seed: req.Seed, RNG: req.RNG,
			IndexBase: req.Index,
		}
		return key, func(ctx context.Context) (any, error) {
			row, err := s.sweepPoint(ctx, p, sreq, 0, req.Value)
			if err != nil {
				return nil, err
			}
			return row, nil
		}, nil
	}
	return "", nil, fmt.Errorf("op = %q must be one of analyze, design, latency, simulate, infer, place, sweep_point: %w", it.Op, ErrRequest)
}

// forwardItem routes one batch item to the replica owning its key,
// replayed as a single-item batch (uniform for every op, including
// sweep_point which has no standalone endpoint). The returned bytes are
// the owner's rendered line. ok=false means compute locally; like
// tryForward, failures never surface as errors.
func (s *Server) forwardItem(r *http.Request, key string, it BatchItem) ([]byte, bool) {
	if s.peers == nil || r.Header.Get(peerHeader) != "" {
		return nil, false
	}
	fwd := &forwardSpec{endpoint: "/v1/batch", body: func() ([]byte, error) {
		b, err := json.Marshal(BatchRequest{Items: []BatchItem{it}})
		if err != nil {
			return nil, fmt.Errorf("serve: marshal forward item: %w", err)
		}
		return b, nil
	}}
	for attempt := 0; attempt < 2; attempt++ {
		member, url, self := s.peers.Route(key)
		if self {
			return nil, false
		}
		b, status, xcache, err := s.peerFetch(r, url, fwd)
		if err != nil {
			peerForwardFails.Inc()
			if s.peers.OnFailure(member) {
				peerDeaths.Inc()
			}
			continue
		}
		s.peers.OnSuccess(member)
		// The owner answered: a non-200 (shed batch) or an in-band error
		// line (error=1 in its aggregate header) is not cacheable — fall
		// back to local compute without marking the peer dead.
		if status != http.StatusOK || len(b) == 0 || !strings.HasSuffix(xcache, ",error=0") {
			peerForwardFails.Inc()
			return nil, false
		}
		return b, true
	}
	return nil, false
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Items) < 1 {
		s.writeError(w, fmt.Errorf("items must hold at least one operation: %w", ErrRequest))
		return
	}
	// Overflow is 413, not 400: the items are not wrong, there are just
	// too many of them — clients split the batch and retry.
	if n := len(req.Items); n > s.cfg.MaxBatchItems {
		s.writeError(w, fmt.Errorf("items holds %d operations, limit %d: %w", n, s.cfg.MaxBatchItems, ErrTooLarge))
		return
	}
	batchRequests.Inc()
	batchItems.Add(uint64(len(req.Items)))

	// Classification pass: every item resolves to hit, forward, miss, or
	// error before any compute runs, so the aggregate X-Cache header can
	// precede the stream. A compute that later fails still lands as an
	// in-band error line; the header reflects lookup-time classification.
	type itemState struct {
		key     string
		compute func(ctx context.Context) (any, error)
		body    []byte
		err     error
	}
	states := make([]*itemState, len(req.Items))
	var hits, misses, forwards, errs int
	for i, it := range req.Items {
		st := &itemState{}
		states[i] = st
		key, compute, err := s.planItem(it)
		if err != nil {
			st.err = err
			errs++
			continue
		}
		st.key, st.compute = key, compute
		if body, ok := s.cache.get(key); ok {
			lookupHit()
			hits++
			st.body = body
			continue
		}
		if body, ok := s.forwardItem(r, key, it); ok {
			lookupForward()
			forwards++
			s.cache.add(key, body)
			st.body = body
			continue
		}
		lookupMiss()
		misses++
	}

	// One admission slot covers every local compute in the batch, acquired
	// before the header so a shed batch is a clean 429/503 + Retry-After.
	// An all-hit (or all-forward) batch never touches the pool.
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if misses > 0 {
		release, err := s.adm.acquire(ctx)
		if err != nil {
			s.writeError(w, err)
			return
		}
		defer release()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Cache", fmt.Sprintf("hit=%d,miss=%d,forward=%d,error=%d", hits, misses, forwards, errs))
	flusher, _ := w.(http.Flusher)
	for _, st := range states {
		line := st.body
		if line == nil && st.err == nil {
			// Singleflight still dedups against standalone requests and
			// other batches; the fn holds this batch's slot, never a
			// second one.
			body, err, _ := s.flight.do(st.key, func() ([]byte, error) {
				return s.renderCompute(ctx, st.key, "", st.compute)
			})
			if err != nil {
				st.err = err
			} else {
				line = body
			}
		}
		if st.err != nil {
			line = errorBody(st.err)
		}
		w.Write(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
}
