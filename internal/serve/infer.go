// The /v1/infer handler: a closed-loop failure-inference campaign as a
// cacheable request/response pair. The simulator streams per-period
// reports (plus liveness beacons) over a lossy uplink through the SPRT
// failure inferencer (internal/infer), scores the inferred dead mask
// against ground truth, and feeds both the true and the inferred
// degradation knobs through the unmodified analysis — the response
// carries the accuracy triple (precision, recall, mean time-to-detect)
// and the truth-vs-inferred detection-probability pair.
//
// Campaigns are deterministic per (config, seed) — the engine consumes
// no randomness of its own — so caching and fleet forwarding are sound
// exactly as for /v1/simulate.
package serve

import (
	"context"
	"fmt"
	"net/http"

	"github.com/groupdetect/gbd/internal/detect"
	"github.com/groupdetect/gbd/internal/faults"
	"github.com/groupdetect/gbd/internal/infer"
	"github.com/groupdetect/gbd/internal/sim"
)

// InferRequest is the /v1/infer body: the canonical closed-loop scenario
// (Bernoulli node death over a flat lossy uplink with liveness beacons)
// plus the SPRT error budget.
type InferRequest struct {
	Scenario Scenario `json:"scenario"`
	// Trials must be in [1, Config.MaxTrials].
	Trials int   `json:"trials"`
	Seed   int64 `json:"seed,omitempty"`
	// DeadFrac is the Bernoulli dead fraction injected per trial.
	DeadFrac float64 `json:"dead_frac,omitempty"`
	// PDeliver is the flat uplink delivery probability: each report or
	// beacon independently reaches the base with this probability inside
	// its generating period. Omitted defaults to 0.9, the canonical
	// closed-loop scenario; 1 means certain delivery.
	PDeliver *float64 `json:"p_deliver,omitempty"`
	// Beacons, default true, has every alive sensor emit a per-period
	// liveness frame. Without beacons a sensor only transmits when the
	// target is in range, which at sparse densities makes silence nearly
	// uninformative — the inferencer stays quiet by design.
	Beacons *bool `json:"beacons,omitempty"`
	// Alpha and Beta are the SPRT false-alarm and missed-detection
	// budgets (defaults 0.01 each).
	Alpha float64 `json:"alpha,omitempty"`
	Beta  float64 `json:"beta,omitempty"`
	// RNG selects the trial RNG scheme ("legacy" or "philox"); empty
	// inherits the server default. Part of the cache identity.
	RNG string `json:"rng,omitempty"`
}

// InferResponse is the /v1/infer result: inference accuracy against
// ground truth and the closed-loop degradation pair.
type InferResponse struct {
	Scenario scenarioEcho `json:"scenario"`
	Trials   int          `json:"trials"`
	// Precision/Recall score the end-of-mission inferred mask with
	// "dead" as the positive class; MeanTTD is the mean periods from
	// true death to declaration over detected deaths.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	MeanTTD   float64 `json:"mean_ttd"`
	// Declarations/Retractions count engine state transitions across the
	// campaign; FalseAlarms counts sensors falsely dead at mission end.
	Declarations int `json:"declarations"`
	Retractions  int `json:"retractions"`
	FalseAlarms  int `json:"false_alarms"`
	// The inferred vs true end-of-mission dead fractions and the
	// engine's adaptive delivery estimate.
	InferredDeadFrac float64 `json:"inferred_dead_frac"`
	TruthDeadFrac    float64 `json:"truth_dead_frac"`
	PDeliverHat      float64 `json:"p_deliver_hat"`
	// TruthProb/InferredProb push the true and the inferred degradation
	// knobs through the analysis; AbsDiff is their gap.
	TruthProb    float64 `json:"truth_prob"`
	InferredProb float64 `json:"inferred_prob"`
	AbsDiff      float64 `json:"abs_diff"`
}

// inferCanonical is the fully resolved, fixed-order form of an
// InferRequest, the value fingerprinted into the cache key.
type inferCanonical struct {
	Scenario scenarioEcho `json:"scenario"`
	Trials   int          `json:"trials"`
	DeadFrac float64      `json:"dead_frac"`
	PDeliver float64      `json:"p_deliver"`
	Beacons  bool         `json:"beacons"`
	Alpha    float64      `json:"alpha"`
	Beta     float64      `json:"beta"`
	RNG      string       `json:"rng,omitempty"`
}

// inferConfig validates an InferRequest and translates it into the
// simulator configuration. Workers is pinned to 1 like /v1/simulate —
// results are worker-count-independent anyway, but 1 keeps intra-request
// parallelism the admission pool's job.
func (s *Server) inferConfig(p detect.Params, req InferRequest) (sim.Config, error) {
	if req.Trials < 1 || req.Trials > s.cfg.MaxTrials {
		return sim.Config{}, fmt.Errorf("trials = %d must be in [1, %d]: %w", req.Trials, s.cfg.MaxTrials, ErrRequest)
	}
	if req.DeadFrac < 0 || req.DeadFrac > 1 {
		return sim.Config{}, fmt.Errorf("dead_frac = %v must be in [0, 1]: %w", req.DeadFrac, ErrRequest)
	}
	pd := 0.9
	if req.PDeliver != nil {
		pd = *req.PDeliver
	}
	if !(pd > 0 && pd <= 1) {
		return sim.Config{}, fmt.Errorf("p_deliver = %v must be in (0, 1]: %w", pd, ErrRequest)
	}
	beacons := true
	if req.Beacons != nil {
		beacons = *req.Beacons
	}
	// The per-period report probability is a function of the scenario, so
	// it resolves here (exactly as the simulator would) and Validate sees
	// a fully concrete option set.
	opt := infer.Options{
		Alpha: req.Alpha, Beta: req.Beta,
		ReportProb: infer.ExpectedReportProb(p, beacons),
	}
	if err := opt.Validate(); err != nil {
		return sim.Config{}, err
	}
	scheme, err := s.resolveRNG(req.RNG)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Config{
		Params:   p,
		Trials:   req.Trials,
		Seed:     req.Seed,
		Workers:  1,
		RNG:      scheme,
		PDeliver: pd,
		Beacons:  beacons,
		Infer:    &opt,
	}
	if req.DeadFrac > 0 {
		cfg.Faults = faults.Bernoulli{DeadFrac: req.DeadFrac}
	}
	return cfg, nil
}

// inferKey validates an InferRequest and returns its resolved parameters,
// simulator configuration, and cache key.
func (s *Server) inferKey(req InferRequest) (detect.Params, sim.Config, string, error) {
	p, err := req.Scenario.params()
	if err != nil {
		return p, sim.Config{}, "", err
	}
	cfg, err := s.inferConfig(p, req)
	if err != nil {
		return p, cfg, "", err
	}
	canon := inferCanonical{
		Scenario: echoParams(p), Trials: req.Trials,
		DeadFrac: req.DeadFrac, PDeliver: cfg.PDeliver,
		Beacons: cfg.Beacons, Alpha: req.Alpha, Beta: req.Beta,
		RNG: canonRNG(cfg.RNG),
	}
	key, err := cacheKey("/v1/infer", canon, req.Seed)
	return p, cfg, key, err
}

func (s *Server) computeInfer(ctx context.Context, p detect.Params, req InferRequest, cfg sim.Config) (*InferResponse, error) {
	res, err := sim.RunCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	st := res.Infer
	pair, err := infer.ClosedLoopPoint(p, st.TruthDeadFrac(), st.InferredDeadFrac(),
		cfg.PDeliver, st.PDeliverObserved(), detect.MSOptions{})
	if err != nil {
		return nil, err
	}
	return &InferResponse{
		Scenario:         echoParams(p),
		Trials:           res.Trials,
		Precision:        st.Precision(),
		Recall:           st.Recall(),
		MeanTTD:          st.MeanTimeToDetect(),
		Declarations:     st.Declarations,
		Retractions:      st.Retractions,
		FalseAlarms:      st.Final.FP,
		InferredDeadFrac: st.InferredDeadFrac(),
		TruthDeadFrac:    st.TruthDeadFrac(),
		PDeliverHat:      st.PDeliverObserved(),
		TruthProb:        pair.TruthProb,
		InferredProb:     pair.InferredProb,
		AbsDiff:          pair.AbsDiff(),
	}, nil
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	var req InferRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	p, cfg, key, err := s.inferKey(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.serveCached(w, r, key, marshalForward("/v1/infer", req), func(ctx context.Context) (any, error) {
		return s.computeInfer(ctx, p, req, cfg)
	})
}
