package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/groupdetect/gbd/internal/detect"
	"github.com/groupdetect/gbd/internal/field"
	"github.com/groupdetect/gbd/internal/sim"
)

// TestAnalyzeRNGDistinctCacheKeys asserts the scheme-safety contract on
// the cache identity: the same analyze request under different RNG
// schemes maps to different keys, while the legacy scheme (explicit or
// defaulted) keeps the pre-scheme key encoding.
func TestAnalyzeRNGDistinctCacheKeys(t *testing.T) {
	s := New(Config{})
	base := AnalyzeRequest{}
	_, legacyKey, err := s.analyzeKey(base)
	if err != nil {
		t.Fatal(err)
	}
	explicit := base
	explicit.RNG = "legacy"
	_, explicitKey, err := s.analyzeKey(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if explicitKey != legacyKey {
		t.Errorf("explicit legacy key %q != defaulted key %q", explicitKey, legacyKey)
	}
	philox := base
	philox.RNG = "philox"
	_, philoxKey, err := s.analyzeKey(philox)
	if err != nil {
		t.Fatal(err)
	}
	if philoxKey == legacyKey {
		t.Error("philox and legacy requests share a cache key")
	}

	// A server defaulting to philox must give an rng-less request the
	// same key as an explicit philox request — the default participates
	// in the identity, not the spelling.
	sp := New(Config{RNG: field.SchemePhilox})
	_, defaultedKey, err := sp.analyzeKey(base)
	if err != nil {
		t.Fatal(err)
	}
	if defaultedKey != philoxKey {
		t.Errorf("philox-default key %q != explicit philox key %q", defaultedKey, philoxKey)
	}
}

// TestAnalyzeRawFastPath exercises the byte-identical fast path: the
// second POST of the exact same body is a cache hit served from the raw
// digest alias, a whitespace variant still hits through the canonical
// key, and a replay of that variant then hits its own raw alias.
func TestAnalyzeRawFastPath(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	const body = `{"scenario":{}}`
	code, src, first := post(t, ts, "/v1/analyze", body)
	if code != http.StatusOK || src != "miss" {
		t.Fatalf("first request: status %d, X-Cache %q", code, src)
	}
	code, src, second := post(t, ts, "/v1/analyze", body)
	if code != http.StatusOK || src != "hit" {
		t.Fatalf("replay: status %d, X-Cache %q", code, src)
	}
	if !bytes.Equal(first, second) {
		t.Error("replayed body differs from the original")
	}
	const spaced = `{ "scenario": {} }`
	code, src, third := post(t, ts, "/v1/analyze", spaced)
	if code != http.StatusOK || src != "hit" {
		t.Fatalf("whitespace variant: status %d, X-Cache %q", code, src)
	}
	if !bytes.Equal(first, third) {
		t.Error("whitespace variant body differs")
	}
	code, src, fourth := post(t, ts, "/v1/analyze", spaced)
	if code != http.StatusOK || src != "hit" {
		t.Fatalf("whitespace replay: status %d, X-Cache %q", code, src)
	}
	if !bytes.Equal(first, fourth) {
		t.Error("whitespace replay body differs")
	}
}

// TestAnalyzeRejectsUnknownRNG pins the 400 on a bad scheme name, on
// both the analyze and simulate paths.
func TestAnalyzeRejectsUnknownRNG(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, _, body := post(t, ts, "/v1/analyze", `{"scenario":{},"rng":"xorshift"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("analyze: status %d: %s", code, body)
	}
	code, _, body = post(t, ts, "/v1/simulate", `{"scenario":{},"trials":10,"rng":"xorshift"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("simulate: status %d: %s", code, body)
	}
}

// TestSimulateRNGScheme runs the same campaign under both schemes: both
// must succeed, miss independently (distinct cache identities), and the
// philox result must match a direct sim.Run under SchemePhilox.
func TestSimulateRNGScheme(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, src, legacyBody := post(t, ts, "/v1/simulate", `{"scenario":{},"trials":40,"seed":7}`)
	if code != http.StatusOK || src != "miss" {
		t.Fatalf("legacy: status %d, X-Cache %q: %s", code, src, legacyBody)
	}
	code, src, philoxBody := post(t, ts, "/v1/simulate", `{"scenario":{},"trials":40,"seed":7,"rng":"philox"}`)
	if code != http.StatusOK || src != "miss" {
		t.Fatalf("philox: status %d, X-Cache %q: %s", code, src, philoxBody)
	}
	var resp SimulateResponse
	if err := decodeBytes(philoxBody, &resp); err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(sim.Config{
		Params: mustParams(t), Trials: 40, Seed: 7, Workers: 1,
		RNG: field.SchemePhilox,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Detections != want.Detections || resp.DetectionProb != want.DetectionProb {
		t.Errorf("philox campaign: got %d/%v, want %d/%v",
			resp.Detections, resp.DetectionProb, want.Detections, want.DetectionProb)
	}
}

func mustParams(t *testing.T) detect.Params {
	t.Helper()
	p, err := Scenario{}.params()
	if err != nil {
		t.Fatal(err)
	}
	return p
}
