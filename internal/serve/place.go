// The /v1/place handler: the optimal-deployment engine behind the same
// canonicalize/cache/admission discipline as every other compute
// endpoint. Placement runs are deterministic per (config, seed), so
// caching the rendered bytes is sound, and the "place" /v1/batch op
// renders through the identical compute closure — a batch item and the
// standalone request are bit-identical by construction.
package serve

import (
	"context"
	"fmt"
	"net/http"

	"github.com/groupdetect/gbd/internal/placement"
)

// placeMaxGrid bounds each candidate-grid axis; placeMaxCells bounds
// trials x patterns, the size of the precomputed report-count matrix
// (uint16 entries, so the cap is ~32 MiB of engine state per request).
const (
	placeMaxGrid    = 128
	placeMaxClasses = 16
	placeMaxCells   = 1 << 24
)

// PlaceClass is the wire form of one homogeneous sub-fleet to place.
type PlaceClass struct {
	Count int     `json:"count"`
	Rs    float64 `json:"rs"`
	Pd    float64 `json:"pd"`
}

// PlaceRequest is the /v1/place body: the scenario (its N is the
// placement budget unless classes are given), the candidate grid, the
// Monte Carlo panel, and the §6 false-alarm model attached to the result.
type PlaceRequest struct {
	Scenario Scenario `json:"scenario"`
	// Classes is the heterogeneous fleet to place; empty means one class
	// of scenario.n sensors at the scenario's rs and pd.
	Classes []PlaceClass `json:"classes,omitempty"`
	// GridCols and GridRows shape the candidate lattice (default 32x32,
	// max 128 per axis).
	GridCols int `json:"grid_cols,omitempty"`
	GridRows int `json:"grid_rows,omitempty"`
	// Trials sizes the track panel (default 2000, bounded by the server's
	// MaxTrials and the grid-area product cap).
	Trials int   `json:"trials,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
	// RNG selects the stream scheme ("legacy" or "philox"); empty
	// inherits the server default. Part of the cache identity.
	RNG string `json:"rng,omitempty"`
	// FalseAlarmP, Budget and Horizon parameterize the §6 report
	// thresholds (defaults 1e-4, 0.01, 1440).
	FalseAlarmP float64 `json:"false_alarm_p,omitempty"`
	Budget      float64 `json:"budget,omitempty"`
	Horizon     int     `json:"horizon,omitempty"`
}

// PlacedSensor is one placed sensor on the wire, in selection order.
type PlacedSensor struct {
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Class int     `json:"class"`
	Gain  float64 `json:"gain"`
}

// PlaceResponse is the /v1/place result: the layout, the placed-vs-
// uniform comparison, and the §6 thresholds for the placed fleet.
type PlaceResponse struct {
	Scenario        scenarioEcho   `json:"scenario"` // N = total placed fleet
	Classes         []PlaceClass   `json:"classes"`
	GridCols        int            `json:"grid_cols"`
	GridRows        int            `json:"grid_rows"`
	Trials          int            `json:"trials"`
	Candidates      int            `json:"candidates"`
	Sensors         []PlacedSensor `json:"sensors"`
	PlacedProb      float64        `json:"placed_prob"`
	PlacedCILo      float64        `json:"placed_ci_lo"`
	PlacedCIHi      float64        `json:"placed_ci_hi"`
	UniformProb     float64        `json:"uniform_prob"`
	UniformCILo     float64        `json:"uniform_ci_lo"`
	UniformCIHi     float64        `json:"uniform_ci_hi"`
	UniformAnalysis float64        `json:"uniform_analysis"`
	AbsGain         float64        `json:"abs_gain"`
	RelGain         float64        `json:"rel_gain"`
	Evals           int64          `json:"evals"`
	LazyHits        int64          `json:"lazy_hits"`
	KMin            int            `json:"k_min"`
	KMinExact       int            `json:"k_min_exact"`
}

// placeCanonical is the fingerprinted form of a PlaceRequest: scenario
// fully resolved with N canonicalized to the total fleet size, the class
// list always explicit (a nil list resolves to the single scenario-derived
// class), every knob concrete. Seed rides the fingerprint's seed slot.
type placeCanonical struct {
	Scenario    scenarioEcho `json:"scenario"`
	Classes     []PlaceClass `json:"classes"`
	GridCols    int          `json:"grid_cols"`
	GridRows    int          `json:"grid_rows"`
	Trials      int          `json:"trials"`
	FalseAlarmP float64      `json:"false_alarm_p"`
	Budget      float64      `json:"budget"`
	Horizon     int          `json:"horizon"`
	RNG         string       `json:"rng,omitempty"`
}

// placeConfig translates a PlaceRequest into a fully resolved placement
// configuration (every default spelled out, so the canonical form below
// is a direct copy of its fields) plus the resolved wire-form class list.
// Workers is pinned to 1: intra-request parallelism is the admission
// pool's job, and placement results are worker-count-independent anyway.
func (s *Server) placeConfig(req PlaceRequest) (placement.Config, []PlaceClass, error) {
	p, err := req.Scenario.params()
	if err != nil {
		return placement.Config{}, nil, err
	}
	if req.GridCols < 0 || req.GridCols > placeMaxGrid || req.GridRows < 0 || req.GridRows > placeMaxGrid {
		return placement.Config{}, nil, fmt.Errorf("grid %dx%d: each axis must be in [1, %d]: %w",
			req.GridCols, req.GridRows, placeMaxGrid, ErrRequest)
	}
	if len(req.Classes) > placeMaxClasses {
		return placement.Config{}, nil, fmt.Errorf("%d classes, limit %d: %w", len(req.Classes), placeMaxClasses, ErrTooLarge)
	}
	if req.Trials < 0 || req.Trials > s.cfg.MaxTrials {
		return placement.Config{}, nil, fmt.Errorf("trials = %d must be in [0, %d]: %w", req.Trials, s.cfg.MaxTrials, ErrRequest)
	}
	scheme, err := s.resolveRNG(req.RNG)
	if err != nil {
		return placement.Config{}, nil, err
	}
	cfg := placement.Config{
		Base:        p,
		GridCols:    req.GridCols,
		GridRows:    req.GridRows,
		Trials:      req.Trials,
		Seed:        req.Seed,
		RNG:         scheme,
		Workers:     1,
		FalseAlarmP: req.FalseAlarmP,
		FAHorizon:   req.Horizon,
		FABudget:    req.Budget,
	}
	if cfg.GridCols == 0 {
		cfg.GridCols = 32
	}
	if cfg.GridRows == 0 {
		cfg.GridRows = 32
	}
	if cfg.Trials == 0 {
		cfg.Trials = 2000
	}
	if cfg.FalseAlarmP == 0 {
		cfg.FalseAlarmP = 1e-4
	}
	if cfg.FAHorizon == 0 {
		cfg.FAHorizon = 1440
	}
	if cfg.FABudget == 0 {
		cfg.FABudget = 0.01
	}
	classes := req.Classes
	if len(classes) == 0 {
		classes = []PlaceClass{{Count: p.N, Rs: p.Rs, Pd: p.Pd}}
	}
	cfg.Classes = make([]placement.Class, len(classes))
	for i, cl := range classes {
		cfg.Classes[i] = placement.Class{Count: cl.Count, Rs: cl.Rs, Pd: cl.Pd}
	}
	if err := cfg.Validate(); err != nil {
		return placement.Config{}, nil, err
	}
	// The report-count matrix is trials x classes x cells of uint16; cap
	// its area so one request cannot pin unbounded memory.
	if cells := int64(cfg.GridCols) * int64(cfg.GridRows) * int64(len(classes)) * int64(cfg.Trials); cells > placeMaxCells {
		return placement.Config{}, nil, fmt.Errorf("grid x classes x trials = %d cells, limit %d: %w",
			cells, placeMaxCells, ErrTooLarge)
	}
	return cfg, classes, nil
}

// placeKey validates a PlaceRequest and returns its placement config,
// resolved class list, and cache key.
func (s *Server) placeKey(req PlaceRequest) (placement.Config, []PlaceClass, string, error) {
	cfg, classes, err := s.placeConfig(req)
	if err != nil {
		return cfg, nil, "", err
	}
	total := 0
	for _, cl := range classes {
		total += cl.Count
	}
	// Canonicalize: N is the fleet size whether it arrived via scenario.n
	// or a class list, and every default is spelled out.
	echo := echoParams(cfg.Base)
	echo.N = total
	canon := placeCanonical{
		Scenario: echo, Classes: classes,
		GridCols: cfg.GridCols, GridRows: cfg.GridRows, Trials: cfg.Trials,
		FalseAlarmP: cfg.FalseAlarmP, Budget: cfg.FABudget, Horizon: cfg.FAHorizon,
		RNG: canonRNG(cfg.RNG),
	}
	key, err := cacheKey("/v1/place", canon, req.Seed)
	return cfg, classes, key, err
}

// computePlace runs the placement engine for a validated request.
func (s *Server) computePlace(ctx context.Context, cfg placement.Config, classes []PlaceClass) (*PlaceResponse, error) {
	res, err := placement.PlaceCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, cl := range classes {
		total += cl.Count
	}
	echo := echoParams(cfg.Base)
	echo.N = total
	sensors := make([]PlacedSensor, len(res.Sensors))
	for i, sn := range res.Sensors {
		sensors[i] = PlacedSensor{X: sn.Pos.X, Y: sn.Pos.Y, Class: sn.Class, Gain: sn.Gain}
	}
	c := res.VsUniform
	return &PlaceResponse{
		Scenario: echo, Classes: classes,
		GridCols: cfg.GridCols, GridRows: cfg.GridRows,
		Trials: res.Trials, Candidates: res.Candidates,
		Sensors:    sensors,
		PlacedProb: c.PlacedProb, PlacedCILo: c.PlacedCI.Lo, PlacedCIHi: c.PlacedCI.Hi,
		UniformProb: c.UniformProb, UniformCILo: c.UniformCI.Lo, UniformCIHi: c.UniformCI.Hi,
		UniformAnalysis: c.UniformAnalysis,
		AbsGain:         c.AbsGain, RelGain: c.RelGain,
		Evals: res.Evals, LazyHits: res.LazyHits,
		KMin: res.KMin, KMinExact: res.KMinExact,
	}, nil
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	var req PlaceRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	cfg, classes, key, err := s.placeKey(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.serveCached(w, r, key, marshalForward("/v1/place", req), func(ctx context.Context) (any, error) {
		return s.computePlace(ctx, cfg, classes)
	})
}
