package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// peerHeader marks a request as already peer-forwarded. A replica that
// receives it answers locally no matter who owns the key, so a stale or
// split fleet view degrades to one extra hop instead of a forwarding
// loop.
const peerHeader = "X-Gbd-Peer"

// forwardSpec describes how to replay a request at the key's owning
// replica: the standalone endpoint to POST and a lazy body renderer
// (marshaling is deferred because most lookups never forward).
type forwardSpec struct {
	endpoint string
	body     func() ([]byte, error)
}

// marshalForward builds a forwardSpec that re-marshals the decoded
// request. Re-encoding is sound: the owner canonicalizes the body again,
// so any JSON spelling of the same request reaches the same cache key.
func marshalForward(endpoint string, req any) *forwardSpec {
	return &forwardSpec{endpoint: endpoint, body: func() ([]byte, error) {
		b, err := json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("serve: marshal forward body: %w", err)
		}
		return b, nil
	}}
}

// tryForward routes a cache miss to the replica owning key. It returns
// the owner's rendered bytes and its upstream provenance tag when the
// forward succeeded; ok=false means the caller must compute locally —
// sharding disabled, we own the key, the request is already a forward,
// or the owner is unreachable (it is marked dead and the key re-routes).
// Forward failures never surface to the client as errors: the fallback
// is always local computation.
func (s *Server) tryForward(r *http.Request, key string, fwd *forwardSpec) (body []byte, upstream string, ok bool) {
	if s.peers == nil || fwd == nil || r.Header.Get(peerHeader) != "" {
		return nil, "", false
	}
	// One re-route: if the first owner fails its probe, the ring without it
	// names a successor; a second failure falls back to local compute.
	for attempt := 0; attempt < 2; attempt++ {
		member, url, self := s.peers.Route(key)
		if self {
			return nil, "", false
		}
		b, status, _, err := s.peerFetch(r, url, fwd)
		if err != nil {
			// Transport-level failure: the peer is unreachable. Open its
			// circuit and try the re-routed owner.
			peerForwardFails.Inc()
			if s.peers.OnFailure(member) {
				peerDeaths.Inc()
			}
			continue
		}
		s.peers.OnSuccess(member)
		if status != http.StatusOK {
			// The peer is alive but refused (shed, bad request): do not
			// mark it dead — owner-computes is best-effort, compute here.
			peerForwardFails.Inc()
			return nil, "", false
		}
		return b, upstreamTag(url), true
	}
	return nil, "", false
}

// peerFetch replays the request at a peer and returns the response body,
// status, and X-Cache provenance (batch forwarding inspects the latter
// for per-item errors). The peer header suppresses further forwarding
// hops.
//
// The forward context derives from the inbound request context — a
// client hang-up cancels the forward — bounded by Config.PeerTimeout,
// which is what distinguishes "owner is stalled" from "computation is
// slow": a stalled owner burns one PeerTimeout, trips its breaker via
// the caller's OnFailure, and the request computes locally with most of
// its RequestTimeout still available.
func (s *Server) peerFetch(r *http.Request, url string, fwd *forwardSpec) ([]byte, int, string, error) {
	payload, err := fwd.body()
	if err != nil {
		return nil, 0, "", err
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+fwd.endpoint, strings.NewReader(string(payload)))
	if err != nil {
		return nil, 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(peerHeader, "1")
	resp, err := s.peerHC.Do(req)
	if err != nil {
		return nil, 0, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, "", err
	}
	return b, resp.StatusCode, resp.Header.Get("X-Cache"), nil
}

// upstreamTag compresses a peer URL into the X-Cache provenance suffix:
// "forward-10.0.0.2:8080" rather than the full scheme-qualified URL.
func upstreamTag(url string) string {
	tag := strings.TrimPrefix(url, "http://")
	tag = strings.TrimPrefix(tag, "https://")
	return strings.TrimSuffix(tag, "/")
}
