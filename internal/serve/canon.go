// Request canonicalization: every JSON body is decoded strictly into a
// wire struct, defaults are resolved, and the resulting canonical value is
// re-encoded with a fixed field order and fingerprinted via
// obs.Fingerprint. Two bodies that differ only in field order, whitespace,
// or explicitly-spelled defaults therefore map to the same cache key,
// while any parameter mutation changes the canonical encoding and so the
// key — the property the canonicalization test suite guards.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"github.com/groupdetect/gbd/internal/detect"
	"github.com/groupdetect/gbd/internal/field"
	"github.com/groupdetect/gbd/internal/obs"
)

// ErrRequest reports an invalid API request; handlers map it to 400.
var ErrRequest = errors.New("serve: invalid request")

// ErrTooLarge reports a request exceeding a configured size bound (the
// /v1/batch item cap); handlers map it to 413.
var ErrTooLarge = errors.New("serve: request too large")

// maxBodyBytes bounds request bodies; scenario + options JSON is tiny.
const maxBodyBytes = 1 << 20

// Scenario is the wire form of detect.Params. Every field is optional;
// omitted fields take the paper's ONR defaults (gbd.Defaults), so a
// minimal request is `{"scenario":{}}`. Pointers distinguish "omitted"
// from an explicit zero, which is rejected by parameter validation rather
// than silently replaced.
type Scenario struct {
	N             *int     `json:"n,omitempty"`
	FieldSide     *float64 `json:"field_side,omitempty"`
	Rs            *float64 `json:"rs,omitempty"`
	V             *float64 `json:"v,omitempty"`
	PeriodSeconds *float64 `json:"period_seconds,omitempty"`
	Pd            *float64 `json:"pd,omitempty"`
	M             *int     `json:"m,omitempty"`
	K             *int     `json:"k,omitempty"`
}

// params resolves the scenario against the defaults and validates it.
func (s Scenario) params() (detect.Params, error) {
	p := detect.Defaults()
	if s.N != nil {
		p.N = *s.N
	}
	if s.FieldSide != nil {
		p.FieldSide = *s.FieldSide
	}
	if s.Rs != nil {
		p.Rs = *s.Rs
	}
	if s.V != nil {
		p.V = *s.V
	}
	if s.PeriodSeconds != nil {
		sec := *s.PeriodSeconds
		if !(sec > 0) || math.IsInf(sec, 0) || math.IsNaN(sec) {
			return p, fmt.Errorf("period_seconds = %v must be positive and finite: %w", sec, ErrRequest)
		}
		p.T = time.Duration(sec * float64(time.Second))
	}
	if s.Pd != nil {
		p.Pd = *s.Pd
	}
	if s.M != nil {
		p.M = *s.M
	}
	if s.K != nil {
		p.K = *s.K
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// scenarioEcho is the fully resolved scenario as echoed in responses and
// used in canonical fingerprints: every field concrete, fixed order.
type scenarioEcho struct {
	N             int     `json:"n"`
	FieldSide     float64 `json:"field_side"`
	Rs            float64 `json:"rs"`
	V             float64 `json:"v"`
	PeriodSeconds float64 `json:"period_seconds"`
	Pd            float64 `json:"pd"`
	M             int     `json:"m"`
	K             int     `json:"k"`
}

func echoParams(p detect.Params) scenarioEcho {
	return scenarioEcho{
		N: p.N, FieldSide: p.FieldSide, Rs: p.Rs, V: p.V,
		PeriodSeconds: p.T.Seconds(), Pd: p.Pd, M: p.M, K: p.K,
	}
}

// AnalyzeOptions is the wire form of detect.MSOptions plus response
// shaping. Zero values mean "plan automatically", like the CLI flags.
type AnalyzeOptions struct {
	Gh             int     `json:"gh,omitempty"`
	G              int     `json:"g,omitempty"`
	TargetAccuracy float64 `json:"target_accuracy,omitempty"`
	// Matrix selects the literal Eq. (12) matrix evaluator.
	Matrix bool `json:"matrix,omitempty"`
	// NoNormalize skips the Eq. (13) renormalization (Figure 9(b)).
	NoNormalize bool `json:"no_normalize,omitempty"`
	// IncludePMF adds the full report-count distribution to the response.
	IncludePMF bool `json:"include_pmf,omitempty"`
}

func (o AnalyzeOptions) msOptions() detect.MSOptions {
	opt := detect.MSOptions{
		Gh: o.Gh, G: o.G,
		TargetAccuracy: o.TargetAccuracy,
		NoNormalize:    o.NoNormalize,
	}
	if o.Matrix {
		opt.Evaluator = detect.EvaluatorMatrix
	}
	return opt
}

// AnalyzeRequest is the /v1/analyze body: a scenario, analysis options,
// and an optional >= h distinct-nodes extension.
type AnalyzeRequest struct {
	Scenario Scenario       `json:"scenario"`
	Options  AnalyzeOptions `json:"options,omitempty"`
	HNodes   int            `json:"h_nodes,omitempty"`
	// RNG selects the simulator's RNG scheme ("legacy" or "philox");
	// empty inherits the server default. Analysis itself draws nothing,
	// but the scheme still partitions the cache so a deployment flipping
	// its default cannot serve bytes attributed to the other scheme.
	RNG string `json:"rng,omitempty"`
}

// DesignRequest is the /v1/design body: the deployment-design workflow
// inputs (the scenario's N and K are outputs here, not inputs).
type DesignRequest struct {
	Scenario Scenario `json:"scenario"`
	// TargetProb is the required detection probability (default 0.9).
	TargetProb float64 `json:"target_prob,omitempty"`
	// FalseAlarmP is the per-sensor per-period false alarm probability
	// (default 1e-4); Budget the system-level false alarm budget over
	// Horizon sensing periods (defaults 0.01 and 1440).
	FalseAlarmP float64 `json:"false_alarm_p,omitempty"`
	Budget      float64 `json:"budget,omitempty"`
	Horizon     int     `json:"horizon,omitempty"`
	// NMax bounds the fleet search (default 1000).
	NMax int `json:"n_max,omitempty"`
}

// LatencyRequest is the /v1/latency body.
type LatencyRequest struct {
	Scenario Scenario       `json:"scenario"`
	Options  AnalyzeOptions `json:"options,omitempty"`
}

// SimulateRequest is the /v1/simulate body: a bounded Monte Carlo
// campaign, optionally with fault injection (Bernoulli node death and/or
// lossy multi-hop delivery — the gbd-faults vocabulary).
type SimulateRequest struct {
	Scenario Scenario `json:"scenario"`
	// Trials must be in [1, Config.MaxTrials].
	Trials int   `json:"trials"`
	Seed   int64 `json:"seed,omitempty"`
	// DeadFrac, when positive, kills that fraction of sensors per trial.
	DeadFrac float64 `json:"dead_frac,omitempty"`
	// CommRange, when positive, routes reports over a unit-disk relay
	// network with PerHopLoss and HopRetries per hop.
	CommRange  float64 `json:"comm_range,omitempty"`
	PerHopLoss float64 `json:"per_hop_loss,omitempty"`
	HopRetries int     `json:"hop_retries,omitempty"`
	// RNG selects the trial RNG scheme ("legacy" or "philox"); empty
	// inherits the server default. Different schemes produce different
	// (equally valid) campaign results, so the scheme is part of the
	// cache identity.
	RNG string `json:"rng,omitempty"`
}

// SweepAxis names a parameter swept by /v1/sweep.
type SweepAxis string

// Sweepable axes.
const (
	AxisN        SweepAxis = "n"
	AxisV        SweepAxis = "v"
	AxisK        SweepAxis = "k"
	AxisM        SweepAxis = "m"
	AxisPd       SweepAxis = "pd"
	AxisDeadFrac SweepAxis = "dead_frac"
)

// SweepRequest is the /v1/sweep body: one scenario parameter swept over
// explicit values, streamed back as NDJSON rows in input order. Trials =
// 0 runs analysis only; positive Trials add a Monte Carlo column per row.
// The retry fields are the sweep fault policy (shared vocabulary with
// gbd-experiments -retries / gbd-faults -point-retries); nil Retries
// inherits the server default.
type SweepRequest struct {
	Scenario Scenario       `json:"scenario"`
	Options  AnalyzeOptions `json:"options,omitempty"`
	Axis     SweepAxis      `json:"axis"`
	Values   []float64      `json:"values"`
	Trials   int            `json:"trials,omitempty"`
	Seed     int64          `json:"seed,omitempty"`
	// Retries / RetryBackoffMS / PointTimeoutMS override the server's
	// default sweep fault policy for this request.
	Retries        *int  `json:"retries,omitempty"`
	RetryBackoffMS int64 `json:"retry_backoff_ms,omitempty"`
	PointTimeoutMS int64 `json:"point_timeout_ms,omitempty"`
	// KeepGoing finishes the sweep past point failures, emitting error
	// rows (gbd-faults -keep-going; sweep.Options.Degrade).
	KeepGoing bool `json:"keep_going,omitempty"`
	// IndexBase offsets the Index field of every emitted row. A sweep
	// coordinator dispatching a shard of a larger grid sets it to the
	// shard's global starting index, so worker rows carry campaign-global
	// indexes and merge byte-identically with a single-machine stream.
	IndexBase int `json:"index_base,omitempty"`
	// RNG selects the trial RNG scheme for the Monte Carlo column
	// ("legacy" or "philox"); empty inherits the server default.
	RNG string `json:"rng,omitempty"`
	// HeartbeatMS opts this stream into keep-alive rows: while no data
	// row is ready, the stream emits `{"hb":true}` lines at this period so
	// proxies, idle timeouts, and the coordinator's stall detector all see
	// a live connection through slow sweep points. 0 (the default)
	// disables heartbeats entirely — a plain sweep stream carries result
	// and error rows only.
	HeartbeatMS int64 `json:"heartbeat_ms,omitempty"`
}

// Heartbeat is the NDJSON keep-alive row interleaved into /v1/sweep
// streams between data rows. Consumers identify it by the "hb" field and
// must not count it as a sweep point.
type Heartbeat struct {
	HB bool `json:"hb"`
}

// decodeJSON strictly decodes r's body into v: unknown fields and
// trailing garbage are request errors, so a typo cannot silently analyze
// the default scenario (and cannot alias two semantically different
// bodies onto one cache key).
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode body: %v: %w", err, ErrRequest)
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body: %w", ErrRequest)
	}
	return nil
}

// decodeBytes is decodeJSON over an already-read body, with the same
// strictness: unknown fields and trailing garbage are request errors.
func decodeBytes(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode body: %v: %w", err, ErrRequest)
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body: %w", ErrRequest)
	}
	return nil
}

// bodyScratch recycles the raw-body read buffer across requests so the
// cache-hit fast path performs no allocation.
type bodyScratch struct {
	buf []byte
}

var bodyPool = sync.Pool{New: func() any { return &bodyScratch{buf: make([]byte, 0, 512)} }}

// readBody reads r's whole body into the pooled scratch, prefixed with
// the endpoint so the raw digest is endpoint-scoped (identical bodies
// posted to different endpoints must not collide). The returned slice
// aliases sc.buf and is valid until the scratch is pooled again.
func readBody(r *http.Request, endpoint string, sc *bodyScratch) ([]byte, error) {
	buf := append(sc.buf[:0], endpoint...)
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if len(buf) > len(endpoint)+maxBodyBytes {
			sc.buf = buf
			return nil, fmt.Errorf("body exceeds %d bytes: %w", maxBodyBytes, ErrRequest)
		}
		if err == io.EOF {
			sc.buf = buf
			return buf, nil
		}
		if err != nil {
			sc.buf = buf
			return nil, fmt.Errorf("read body: %v: %w", err, ErrRequest)
		}
	}
}

// resolveRNG maps a wire scheme name to the effective scheme: empty
// inherits the server default, anything else must parse.
func (s *Server) resolveRNG(name string) (field.RNGScheme, error) {
	if name == "" {
		return s.cfg.RNG, nil
	}
	scheme, err := field.ParseRNGScheme(name)
	if err != nil {
		return 0, fmt.Errorf("%v: %w", err, ErrRequest)
	}
	return scheme, nil
}

// canonRNG is the scheme's canonical wire spelling: empty for legacy so
// that pre-scheme cache keys (and clients) are undisturbed, the scheme
// name otherwise.
func canonRNG(scheme field.RNGScheme) string {
	if scheme == field.SchemeLegacy {
		return ""
	}
	return scheme.String()
}

// cacheKey fingerprints a canonical request value for one endpoint. The
// canonical value must be fully resolved (defaults applied) and have a
// deterministic encoding; struct field order provides that. The seed
// separates simulation campaigns that differ only in seed.
func cacheKey(endpoint string, canonical any, seed int64) (string, error) {
	blob, err := json.Marshal(canonical)
	if err != nil {
		return "", fmt.Errorf("serve: canonicalize %s request: %w", endpoint, err)
	}
	return obs.Fingerprint("gbd-server"+endpoint, string(blob), seed), nil
}
