package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestBatchBitIdentical: every /v1/batch line must be byte-equal to the
// standalone response of the same request, and the two surfaces must
// share cache entries in both directions.
func TestBatchBitIdentical(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	items := []struct {
		op, path, body string
	}{
		{"analyze", "/v1/analyze", `{"scenario":{}}`},
		{"analyze", "/v1/analyze", `{"scenario":{"n":100},"h_nodes":2}`},
		{"latency", "/v1/latency", `{"scenario":{}}`},
		{"design", "/v1/design", `{"scenario":{},"target_prob":0.95}`},
		{"simulate", "/v1/simulate", `{"scenario":{},"trials":500,"seed":7}`},
	}
	var specs []string
	var want [][]byte
	for _, it := range items {
		code, _, body := post(t, ts, it.path, it.body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", it.path, code, body)
		}
		want = append(want, body)
		specs = append(specs, fmt.Sprintf(`{"op":%q,"request":%s}`, it.op, it.body))
	}

	code, xcache, body := post(t, ts, "/v1/batch", `{"items":[`+strings.Join(specs, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, body)
	}
	// The standalone round populated every key, so the batch is all hits.
	if wantHdr := fmt.Sprintf("hit=%d,miss=0,forward=0,error=0", len(items)); xcache != wantHdr {
		t.Errorf("X-Cache = %q, want %q", xcache, wantHdr)
	}
	lines := bytes.SplitAfter(body, []byte("\n"))
	if lines[len(lines)-1] != nil && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) != len(items) {
		t.Fatalf("batch returned %d lines, want %d:\n%s", len(lines), len(items), body)
	}
	for i, line := range lines {
		if !bytes.Equal(line, want[i]) {
			t.Errorf("item %d (%s) differs from standalone response:\ngot  %q\nwant %q", i, items[i].op, line, want[i])
		}
	}

	// The reverse direction: a batch miss populates the cache the
	// standalone endpoint then hits.
	code, _, _ = post(t, ts, "/v1/batch",
		`{"items":[{"op":"analyze","request":{"scenario":{"n":77}}}]}`)
	if code != http.StatusOK {
		t.Fatal("batch miss failed")
	}
	_, src, _ := post(t, ts, "/v1/analyze", `{"scenario":{"n": 77}}`)
	if src != "hit" {
		t.Errorf("standalone after batch: X-Cache = %q, want hit (shared cache keys)", src)
	}
}

// TestBatchErrorsInBand: a broken item becomes an in-band error line at
// its position — counted in the aggregate header, never cached, and
// never failing the items around it.
func TestBatchErrorsInBand(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, xcache, body := post(t, ts, "/v1/batch", `{"items":[
		{"op":"analyze","request":{"scenario":{}}},
		{"op":"analyze","request":{"scenario":{"n":-5}}},
		{"op":"nope","request":{}},
		{"op":"latency","request":{"scenario":{}}}
	]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if !strings.HasSuffix(xcache, ",error=2") {
		t.Errorf("X-Cache = %q, want 2 errors", xcache)
	}
	lines := nonEmptyLines(body)
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4:\n%s", len(lines), body)
	}
	for _, i := range []int{1, 2} {
		var e map[string]string
		if err := json.Unmarshal(lines[i], &e); err != nil || e["error"] == "" {
			t.Errorf("line %d should be an error line, got %q", i, lines[i])
		}
	}
	for _, i := range []int{0, 3} {
		var e map[string]any
		if err := json.Unmarshal(lines[i], &e); err != nil || e["error"] != nil {
			t.Errorf("line %d should be a data line, got %q", i, lines[i])
		}
	}

	// Envelope problems are still a whole-request 400.
	if code, _, _ := post(t, ts, "/v1/batch", `{"items":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty items: status %d, want 400", code)
	}
	// Item-count overflow is 413 (split and retry), distinct from the
	// malformed-envelope 400, and still carries the in-band error body.
	over := New(Config{MaxBatchItems: 1})
	ts2 := httptest.NewServer(over.Handler())
	defer ts2.Close()
	code, _, overBody := post(t, ts2, "/v1/batch",
		`{"items":[{"op":"analyze","request":{"scenario":{}}},{"op":"analyze","request":{"scenario":{}}}]}`)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("over max-batch-items: status %d, want 413", code)
	}
	var overErr map[string]string
	if err := json.Unmarshal([]byte(overBody), &overErr); err != nil || overErr["error"] == "" {
		t.Errorf("413 body should be an in-band error line, got %q", overBody)
	}
}

// TestBatchSweepPointMatchesStream: the sweep_point op renders the exact
// bytes the /v1/sweep stream emits for the same point, so a coordinator
// fetching its shard as a batch still merges byte-identically.
func TestBatchSweepPointMatchesStream(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, _, stream := post(t, ts, "/v1/sweep",
		`{"scenario":{},"axis":"n","values":[60,90,120],"trials":300,"seed":5,"index_base":10}`)
	if code != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", code, stream)
	}
	var specs []string
	for i, v := range []int{60, 90, 120} {
		specs = append(specs, fmt.Sprintf(
			`{"op":"sweep_point","request":{"scenario":{},"axis":"n","value":%d,"index":%d,"trials":300,"seed":5}}`,
			v, 10+i))
	}
	code, _, batch := post(t, ts, "/v1/batch", `{"items":[`+strings.Join(specs, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, batch)
	}
	if !bytes.Equal(batch, stream) {
		t.Errorf("sweep_point batch differs from stream:\ngot  %q\nwant %q", batch, stream)
	}

	// Validation errors surface in-band like every other op.
	code, xcache, body := post(t, ts, "/v1/batch",
		`{"items":[{"op":"sweep_point","request":{"scenario":{},"axis":"zzz","value":1}}]}`)
	if code != http.StatusOK || !strings.HasSuffix(xcache, ",error=1") {
		t.Errorf("bad axis: status %d X-Cache %q body %s", code, xcache, body)
	}
}

// TestBatchSingleAdmissionSlot: a batch with many computing items claims
// one admission slot, and a shed batch is a single 429 with Retry-After.
func TestBatchSingleAdmissionSlot(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	admitted0 := admitted.Value()
	code, _, body := post(t, ts, "/v1/batch", `{"items":[
		{"op":"analyze","request":{"scenario":{"n":61}}},
		{"op":"analyze","request":{"scenario":{"n":62}}},
		{"op":"analyze","request":{"scenario":{"n":63}}}
	]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if got := admitted.Value() - admitted0; got != 1 {
		t.Errorf("batch admitted %d times, want 1 slot for the whole batch", got)
	}

	// Saturate the pool and the queue, then verify the shed batch's shape.
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan struct{})
	go func() {
		r, err := s.adm.acquire(context.Background()) // parks, filling the queue
		if err == nil {
			r()
		}
		close(queued)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.queued.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"items":[{"op":"analyze","request":{"scenario":{"n":64}}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed batch: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	release()
	<-queued
}

// TestRetryAfterOnShed: every shed response (429 and 503) carries a
// positive integral Retry-After derived from the queue state.
func TestRetryAfterOnShed(t *testing.T) {
	a := newAdmission(2, 8)
	if got := a.retryAfterSeconds(); got != 1 {
		t.Errorf("idle retryAfterSeconds = %d, want the 1s floor", got)
	}
	a.queued.Store(20)
	if got := a.retryAfterSeconds(); got != 10 {
		t.Errorf("retryAfterSeconds = %d, want queued/workers = 10", got)
	}
	a.queued.Store(1000)
	if got := a.retryAfterSeconds(); got != 30 {
		t.Errorf("retryAfterSeconds = %d, want the 30s cap", got)
	}
}

func nonEmptyLines(body []byte) [][]byte {
	var out [][]byte
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(bytes.TrimSpace(line)) > 0 {
			out = append(out, line)
		}
	}
	return out
}
