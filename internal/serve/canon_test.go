package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// post sends one JSON body and returns status, X-Cache and the raw body.
func post(t *testing.T, ts *httptest.Server, path, body string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s response: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), data
}

// TestCanonicalization is the request-canonicalization table: two bodies
// that differ only in field order, whitespace, or explicitly spelled
// defaults must land on the same cache key (second request hits), while
// any parameter mutation must change the key (second request misses).
// Same-key pairs must also produce bit-identical bodies.
func TestCanonicalization(t *testing.T) {
	cases := []struct {
		name    string
		path    string
		a, b    string
		sameKey bool
	}{
		{
			name: "reordered fields",
			path: "/v1/analyze",
			a:    `{"scenario":{"n":100,"v":5}}`,
			b:    `{"scenario":{"v":5,"n":100}}`, sameKey: true,
		},
		{
			name: "whitespace and formatting",
			path: "/v1/analyze",
			a:    `{"scenario":{"n":100}}`,
			b:    "{\n  \"scenario\": {\n    \"n\": 100\n  }\n}", sameKey: true,
		},
		{
			name:    "explicitly spelled defaults",
			path:    "/v1/analyze",
			a:       `{"scenario":{}}`,
			b:       `{"scenario":{"n":120,"field_side":32000,"rs":1000,"v":10,"period_seconds":60,"pd":0.9,"m":20,"k":5}}`,
			sameKey: true,
		},
		{
			name: "empty options equals omitted options",
			path: "/v1/analyze",
			a:    `{"scenario":{}}`,
			b:    `{"scenario":{},"options":{},"h_nodes":0}`, sameKey: true,
		},
		{
			name: "different n",
			path: "/v1/analyze",
			a:    `{"scenario":{"n":100}}`,
			b:    `{"scenario":{"n":101}}`, sameKey: false,
		},
		{
			name: "different pd",
			path: "/v1/analyze",
			a:    `{"scenario":{}}`,
			b:    `{"scenario":{"pd":0.8}}`, sameKey: false,
		},
		{
			name: "h_nodes switches analysis",
			path: "/v1/analyze",
			a:    `{"scenario":{}}`,
			b:    `{"scenario":{},"h_nodes":2}`, sameKey: false,
		},
		{
			name: "include_pmf shapes the response",
			path: "/v1/analyze",
			a:    `{"scenario":{}}`,
			b:    `{"scenario":{},"options":{"include_pmf":true}}`, sameKey: false,
		},
		{
			name: "evaluator choice is identity",
			path: "/v1/analyze",
			a:    `{"scenario":{}}`,
			b:    `{"scenario":{},"options":{"matrix":true}}`, sameKey: false,
		},
		{
			name: "design ignores scenario n and k",
			path: "/v1/design",
			a:    `{"scenario":{"n":60,"k":3}}`,
			b:    `{"scenario":{"n":200,"k":7}}`, sameKey: true,
		},
		{
			name: "design target matters",
			path: "/v1/design",
			a:    `{"scenario":{},"target_prob":0.9}`,
			b:    `{"scenario":{},"target_prob":0.8}`, sameKey: false,
		},
		{
			name: "simulate same seed",
			path: "/v1/simulate",
			a:    `{"scenario":{},"trials":50,"seed":7}`,
			b:    `{"trials":50,"seed":7,"scenario":{}}`, sameKey: true,
		},
		{
			name: "simulate seed matters",
			path: "/v1/simulate",
			a:    `{"scenario":{},"trials":50,"seed":7}`,
			b:    `{"scenario":{},"trials":50,"seed":8}`, sameKey: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// A fresh server per case isolates the cache, so X-Cache
			// provenance is exactly first-request miss, second hit-or-miss.
			ts := httptest.NewServer(New(Config{}).Handler())
			defer ts.Close()
			codeA, cacheA, bodyA := post(t, ts, tc.path, tc.a)
			if codeA != http.StatusOK {
				t.Fatalf("first request: status %d, body %s", codeA, bodyA)
			}
			if cacheA != "miss" {
				t.Fatalf("first request: X-Cache = %q, want miss", cacheA)
			}
			codeB, cacheB, bodyB := post(t, ts, tc.path, tc.b)
			if codeB != http.StatusOK {
				t.Fatalf("second request: status %d, body %s", codeB, bodyB)
			}
			if tc.sameKey {
				if cacheB != "hit" {
					t.Errorf("X-Cache = %q, want hit (bodies should canonicalize identically)", cacheB)
				}
				if !bytes.Equal(bodyA, bodyB) {
					t.Errorf("same-key responses differ:\n%s\n%s", bodyA, bodyB)
				}
			} else if cacheB != "miss" {
				t.Errorf("X-Cache = %q, want miss (bodies are semantically different)", cacheB)
			}
		})
	}
}

// TestStrictDecoding: typos and trailing garbage are 400s, never silently
// canonicalized onto a valid request's key.
func TestStrictDecoding(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	for _, body := range []string{
		`{"scenario":{"sensors":120}}`,    // unknown scenario field
		`{"scenarios":{}}`,                // unknown top-level field
		`{"scenario":{}} {"scenario":{}}`, // trailing data
		`{"scenario":{"n":"many"}}`,       // type mismatch
		`not json`,
	} {
		code, _, respBody := post(t, ts, "/v1/analyze", body)
		if code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400 (%s)", body, code, respBody)
		}
	}
}

// TestRequestValidation maps parameter and envelope mistakes to 400.
func TestRequestValidation(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxTrials: 100, MaxSweepPoints: 4}).Handler())
	defer ts.Close()
	cases := []struct{ path, body string }{
		{"/v1/analyze", `{"scenario":{"n":-1}}`},
		{"/v1/analyze", `{"scenario":{"pd":1.5}}`},
		{"/v1/analyze", `{"scenario":{"period_seconds":0}}`},
		{"/v1/analyze", `{"scenario":{},"h_nodes":-1}`},
		{"/v1/simulate", `{"scenario":{},"trials":0}`},
		{"/v1/simulate", `{"scenario":{},"trials":101}`},
		{"/v1/simulate", `{"scenario":{},"trials":10,"dead_frac":1.5}`},
		{"/v1/simulate", `{"scenario":{},"trials":10,"per_hop_loss":1}`},
		{"/v1/sweep", `{"scenario":{},"axis":"sensors","values":[1]}`},
		{"/v1/sweep", `{"scenario":{},"axis":"n","values":[]}`},
		{"/v1/sweep", `{"scenario":{},"axis":"n","values":[1,2,3,4,5]}`},
		{"/v1/sweep", `{"scenario":{},"axis":"n","values":[60],"trials":101}`},
		{"/v1/sweep", `{"scenario":{},"axis":"n","values":[60],"retries":-1}`},
	}
	for _, tc := range cases {
		code, _, body := post(t, ts, tc.path, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400 (%s)", tc.path, tc.body, code, body)
		}
	}
}
