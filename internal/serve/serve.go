// Package serve is the concurrent analysis/simulation serving layer: an
// HTTP JSON API exposing the paper's M-S-approach analysis, the design
// workflow, latency profiles, bounded Monte Carlo campaigns, parameter
// sweeps (streamed as NDJSON), and the experiment registry as a
// long-lived service.
//
// The serving machinery is the request/cache/batch shape used by
// inference stacks (DESIGN.md §11):
//
//   - canonicalization: every request body is resolved against defaults
//     and fingerprinted (obs.Fingerprint), so equivalent bodies share one
//     cache key (canon.go);
//   - a size-bounded LRU over rendered response bytes — a hit returns the
//     exact bytes of the response that populated it (cache.go);
//   - singleflight dedup: concurrent identical misses share one
//     computation (flight.go);
//   - admission control: a bounded worker pool behind a bounded queue,
//     shedding load with 429 (queue full) and 503 (deadline expired while
//     queued) instead of collapsing (admission.go);
//   - graceful drain: the server attaches no state to http.Server, so
//     http.Server.Shutdown gives drain semantics for free — in-flight
//     requests (including NDJSON sweep streams) run to completion while
//     new connections are refused.
//
// All computations observe a per-request deadline (Config.RequestTimeout)
// through the context plumbing added in DESIGN.md §10, so a runaway
// request cannot pin a worker forever.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	gbd "github.com/groupdetect/gbd"
	"github.com/groupdetect/gbd/internal/detect"
	"github.com/groupdetect/gbd/internal/experiments"
	"github.com/groupdetect/gbd/internal/falsealarm"
	"github.com/groupdetect/gbd/internal/faults"
	"github.com/groupdetect/gbd/internal/field"
	"github.com/groupdetect/gbd/internal/infer"
	"github.com/groupdetect/gbd/internal/netsim"
	"github.com/groupdetect/gbd/internal/obs"
	"github.com/groupdetect/gbd/internal/peer"
	"github.com/groupdetect/gbd/internal/placement"
	"github.com/groupdetect/gbd/internal/sim"
)

// Config tunes the serving layer. The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// CacheEntries bounds the result LRU (default 1024; negative disables
	// caching).
	CacheEntries int
	// Workers bounds concurrent computations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker (default
	// 4*Workers). Requests beyond it are rejected with 429.
	QueueDepth int
	// RequestTimeout deadlines each computation (default 30s).
	RequestTimeout time.Duration
	// MaxTrials bounds /v1/simulate and per-sweep-point trial counts
	// (default 200000).
	MaxTrials int
	// MaxSweepPoints bounds /v1/sweep value lists (default 512).
	MaxSweepPoints int
	// SweepWorkers bounds the intra-request parallelism of one sweep
	// stream (default 1). A sweep holds exactly one admission slot
	// regardless; this knob only shapes work inside it.
	SweepWorkers int
	// Retries, RetryBackoff and PointTimeout are the default sweep fault
	// policy (the gbd-experiments -retries / gbd-faults -point-retries
	// vocabulary); SweepRequest fields override them per request.
	Retries      int
	RetryBackoff time.Duration
	PointTimeout time.Duration
	// RNG is the default trial RNG scheme for requests that omit "rng"
	// (zero value: the legacy per-trial reseed scheme). The scheme is
	// part of every cache identity, so flipping the default cannot serve
	// results computed under the other scheme.
	RNG field.RNGScheme
	// MaxBatchItems bounds /v1/batch item lists (default 1024). Requests
	// exceeding it are rejected with 413.
	MaxBatchItems int

	// Peers is the fleet view for consistent-hash cache sharding: the
	// base URLs of every replica, this one included, identical on every
	// replica (same strings — the ring is a pure function of this list).
	// Fewer than two peers disables sharding. Self must then name this
	// replica's own entry verbatim; validate with Config.ValidatePeers
	// before New, which silently disables sharding on a bad fleet view.
	Peers []string
	Self  string
	// PeerCooldown is how long a peer marked dead stays out of the ring
	// before a single re-admission probe (default 2s).
	PeerCooldown time.Duration
	// PeerTimeout bounds one peer-forward round trip (default 2s). A
	// stalled owner — accepting connections but never answering — times
	// out here, trips its breaker, and the request falls back to local
	// compute instead of stalling for the full request deadline.
	PeerTimeout time.Duration
}

// ValidatePeers checks the fleet-view configuration: with sharding
// enabled (two or more peers), the list must be duplicate-free and Self
// must appear in it verbatim.
func (c Config) ValidatePeers() error {
	if len(c.Peers) < 2 {
		return nil
	}
	_, err := peer.NewPicker(c.Peers, c.Self, peer.Options{})
	return err
}

func (c Config) withDefaults() Config {
	if err := c.RNG.Validate(); err != nil {
		c.RNG = field.SchemeLegacy
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxTrials <= 0 {
		c.MaxTrials = 200000
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 512
	}
	if c.SweepWorkers <= 0 {
		c.SweepWorkers = 1
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 1024
	}
	if c.PeerCooldown <= 0 {
		c.PeerCooldown = 2 * time.Second
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	return c
}

// Server is the serving layer. Create with New; it is safe for
// concurrent use by any number of HTTP requests.
type Server struct {
	cfg    Config
	cache  *resultCache
	flight *flightGroup
	adm    *admission
	mux    *http.ServeMux
	start  time.Time
	// peers is the consistent-hash fleet view; nil when sharding is
	// disabled (fewer than two peers, or an invalid fleet view — callers
	// surface the latter via Config.ValidatePeers before New).
	peers  *peer.Picker
	peerHC *http.Client
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		cache:  newResultCache(cfg.CacheEntries),
		flight: newFlightGroup(),
		adm:    newAdmission(cfg.Workers, cfg.QueueDepth),
		start:  time.Now(),
	}
	if len(cfg.Peers) >= 2 {
		if pk, err := peer.NewPicker(cfg.Peers, cfg.Self, peer.Options{Cooldown: cfg.PeerCooldown}); err == nil {
			s.peers = pk
			s.peerHC = &http.Client{Timeout: cfg.RequestTimeout}
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/design", s.handleDesign)
	mux.HandleFunc("POST /v1/latency", s.handleLatency)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/infer", s.handleInfer)
	mux.HandleFunc("POST /v1/place", s.handlePlace)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler: the API mux wrapped with request
// counting and latency observation. Mount it on an http.Server;
// http.Server.Shutdown then drains in-flight requests gracefully.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveRequests.Inc()
		t0 := time.Now()
		s.mux.ServeHTTP(w, r)
		serveLatency.Observe(time.Since(t0).Seconds())
	})
}

// requestCtx derives the computation context: the request context bounded
// by the per-request deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// errorStatus maps an error to its HTTP status: request/parameter
// problems are 400, size-bound overflow 413, queue overflow 429,
// deadline or cancellation 503, everything else 500.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrRequest),
		errors.Is(err, detect.ErrParams),
		errors.Is(err, sim.ErrConfig),
		errors.Is(err, infer.ErrConfig),
		errors.Is(err, experiments.ErrExperiment),
		errors.Is(err, netsim.ErrNetwork),
		errors.Is(err, placement.ErrConfig):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// errorBody renders the JSON error line — the same bytes whether the
// error is a whole response (writeError) or one item of a /v1/batch
// stream.
func errorBody(err error) []byte {
	resp, _ := json.Marshal(map[string]string{"error": err.Error()})
	return append(resp, '\n')
}

// writeError renders an error response. Shed requests (429 overflow, 503
// queued-deadline) carry a Retry-After header derived from the live
// queue depth so clients — gbd-loadgen, the fabric coordinator — back
// off for roughly one queue drain instead of hot-looping.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	serveErrors.Inc()
	code := errorStatus(err)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterSeconds()))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(errorBody(err))
}

// writeBody writes a rendered JSON response with its cache provenance
// ("hit", "miss", or "dedup") in the X-Cache header.
func writeBody(w http.ResponseWriter, source string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", source)
	w.Write(body)
}

// serveCached is the shared read path: cache lookup, then singleflight
// dedup around an admission-controlled computation. compute's result is
// marshaled once; the bytes are cached and every hit or follower receives
// exactly those bytes, so identical requests are bit-identical responses
// by construction.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, fwd *forwardSpec, compute func(ctx context.Context) (any, error)) {
	s.serveKeyed(w, r, key, "", fwd, compute)
}

// serveKeyed is serveCached with an optional second cache key: rawKey,
// when non-empty, is the digest of the exact request bytes, attached to
// the canonical entry as an alias so the next byte-identical request
// short-circuits in the handler before any JSON decoding or
// canonicalization (the near-zero-alloc hit path). The alias is sound
// because identical raw bytes always canonicalize to the same key, hence
// the same body; it shares the entry's LRU slot rather than holding one
// of its own.
//
// With fleet sharding enabled, a local miss on a key owned by another
// replica is forwarded there (forward.go) instead of computed; the
// owner's singleflight is the fleet-wide dedup point, so no key is
// computed by more than one replica.
func (s *Server) serveKeyed(w http.ResponseWriter, r *http.Request, key, rawKey string, fwd *forwardSpec, compute func(ctx context.Context) (any, error)) {
	if body, ok := s.cache.get(key); ok {
		lookupHit()
		s.cache.attachAlias(key, rawKey)
		writeBody(w, "hit", body)
		return
	}
	if body, upstream, ok := s.tryForward(r, key, fwd); ok {
		lookupForward()
		// Byte replication is fine — only computation must be single-
		// owner — and caching the forwarded bytes locally means repeat
		// traffic for this key is a local hit on every replica.
		s.cache.add(key, body)
		s.cache.attachAlias(key, rawKey)
		writeBody(w, "forward-"+upstream, body)
		return
	}
	lookupMiss()
	body, err, shared := s.flight.do(key, func() ([]byte, error) {
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		release, err := s.adm.acquire(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		return s.renderCompute(ctx, key, rawKey, compute)
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	source := "miss"
	if shared {
		source = "dedup"
	}
	writeBody(w, source, body)
}

// renderCompute runs compute, marshals its result into the final
// response bytes (one JSON line), and populates the cache. It is the
// single render point shared by the standalone handlers and /v1/batch,
// which is what makes their bytes bit-identical by construction.
func (s *Server) renderCompute(ctx context.Context, key, rawKey string, compute func(ctx context.Context) (any, error)) ([]byte, error) {
	v, err := compute(ctx)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal response: %w", err)
	}
	body = append(body, '\n')
	s.cache.add(key, body)
	s.cache.attachAlias(key, rawKey)
	return body, nil
}

// ---- /healthz and /metrics ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"inflight":       inflight.Value(),
		"cache_entries":  s.cache.len(),
	}
	body, _ := json.Marshal(resp)
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body, err := json.MarshalIndent(obs.Default.Snapshot(), "", "  ")
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

// ---- /v1/analyze ----

// AnalyzeResponse is the /v1/analyze result.
type AnalyzeResponse struct {
	Scenario          scenarioEcho `json:"scenario"`
	HNodes            int          `json:"h_nodes,omitempty"`
	DetectionProb     float64      `json:"detection_prob"`
	RawTail           float64      `json:"raw_tail"`
	Mass              float64      `json:"mass"`
	Gh                int          `json:"gh"`
	G                 int          `json:"g"`
	PredictedAccuracy float64      `json:"predicted_accuracy,omitempty"`
	PMF               []float64    `json:"pmf,omitempty"`
}

// analyzeCanonical is the canonical (fully resolved, fixed-order) form of
// an AnalyzeRequest, the value that is fingerprinted into the cache key.
type analyzeCanonical struct {
	Scenario scenarioEcho   `json:"scenario"`
	Options  AnalyzeOptions `json:"options"`
	HNodes   int            `json:"h_nodes"`
	// RNG is the resolved scheme's canonical spelling; omitempty keeps
	// legacy ("") encodings — and therefore pre-scheme cache keys —
	// byte-identical.
	RNG string `json:"rng,omitempty"`
}

// analyzeKey canonicalizes an AnalyzeRequest into its resolved parameters
// and cache key.
func (s *Server) analyzeKey(req AnalyzeRequest) (detect.Params, string, error) {
	p, err := req.Scenario.params()
	if err != nil {
		return p, "", err
	}
	if req.HNodes < 0 {
		return p, "", fmt.Errorf("h_nodes = %d must be >= 0: %w", req.HNodes, ErrRequest)
	}
	scheme, err := s.resolveRNG(req.RNG)
	if err != nil {
		return p, "", err
	}
	key, err := cacheKey("/v1/analyze", analyzeCanonical{
		Scenario: echoParams(p), Options: req.Options, HNodes: req.HNodes,
		RNG: canonRNG(scheme),
	}, 0)
	return p, key, err
}

// computeAnalyze runs the analysis for a decoded request: MSApproach, or
// MSApproachNodes when h_nodes >= 1.
func (s *Server) computeAnalyze(ctx context.Context, p detect.Params, req AnalyzeRequest) (*AnalyzeResponse, error) {
	opt := req.Options.msOptions()
	if req.HNodes >= 1 {
		res, err := gbd.AnalyzeNodesCtx(ctx, p, req.HNodes, opt)
		if err != nil {
			return nil, err
		}
		return &AnalyzeResponse{
			Scenario: echoParams(p), HNodes: req.HNodes,
			DetectionProb: res.DetectionProb, RawTail: res.RawTail,
			Mass: res.Mass, Gh: res.Gh, G: res.G,
		}, nil
	}
	res, err := gbd.AnalyzeCtx(ctx, p, opt)
	if err != nil {
		return nil, err
	}
	resp := &AnalyzeResponse{
		Scenario:      echoParams(p),
		DetectionProb: res.DetectionProb, RawTail: res.RawTail,
		Mass: res.Mass, Gh: res.Gh, G: res.G,
		PredictedAccuracy: res.PredictedAccuracy,
	}
	if req.Options.IncludePMF {
		resp.PMF = res.PMF
	}
	return resp, nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	// Raw-body fast path: hash the exact request bytes and serve the
	// rendered response without decoding when a previous byte-identical
	// request populated the alias. Identical bytes always canonicalize
	// identically, so this can never serve the wrong entry; bodies that
	// differ only in whitespace or field order simply fall through to the
	// canonical key below.
	const endpoint = "/v1/analyze"
	sc := bodyPool.Get().(*bodyScratch)
	defer bodyPool.Put(sc)
	raw, err := readBody(r, endpoint, sc)
	if err != nil {
		s.writeError(w, err)
		return
	}
	digest := sha256.Sum256(raw)
	if body, ok := s.cache.getBytes(digest[:]); ok {
		lookupHit()
		writeBody(w, "hit", body)
		return
	}
	lookupMiss()
	var req AnalyzeRequest
	if err := decodeBytes(raw[len(endpoint):], &req); err != nil {
		s.writeError(w, err)
		return
	}
	p, key, err := s.analyzeKey(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// The raw bytes outlive this call (the pooled scratch is released on
	// handler return, after serveKeyed finishes), so the forward spec can
	// reuse them verbatim.
	fwd := &forwardSpec{endpoint: endpoint, body: func() ([]byte, error) {
		return raw[len(endpoint):], nil
	}}
	s.serveKeyed(w, r, key, string(digest[:]), fwd, func(ctx context.Context) (any, error) {
		return s.computeAnalyze(ctx, p, req)
	})
}

// ---- /v1/design ----

// DesignResponse is the /v1/design result: the sized rule and fleet.
type DesignResponse struct {
	Scenario      scenarioEcho `json:"scenario"` // with the designed N and K
	K             int          `json:"k"`
	N             int          `json:"n"`
	DetectionProb float64      `json:"detection_prob"`
	TargetProb    float64      `json:"target_prob"`
	FalseAlarmP   float64      `json:"false_alarm_p"`
	Budget        float64      `json:"budget"`
	Horizon       int          `json:"horizon"`
	// KMinExact is the §6 exact scan-statistic lower bound on K for the
	// sized fleet — never larger than K, which is sized from the union
	// bound. 0 when the exact chain exceeds its tractability guard.
	KMinExact int `json:"k_min_exact"`
}

// designCanonical omits the scenario's N and K: they are outputs of the
// design workflow, so requests differing only there must share a key.
type designCanonical struct {
	Scenario    scenarioEcho `json:"scenario"`
	TargetProb  float64      `json:"target_prob"`
	FalseAlarmP float64      `json:"false_alarm_p"`
	Budget      float64      `json:"budget"`
	Horizon     int          `json:"horizon"`
	NMax        int          `json:"n_max"`
}

func (r *DesignRequest) withDefaults() {
	if r.TargetProb == 0 {
		r.TargetProb = 0.9
	}
	if r.FalseAlarmP == 0 {
		r.FalseAlarmP = 1e-4
	}
	if r.Budget == 0 {
		r.Budget = 0.01
	}
	if r.Horizon == 0 {
		r.Horizon = 1440
	}
	if r.NMax == 0 {
		r.NMax = 1000
	}
}

// computeDesign sizes the rule and fleet: K from the false-alarm budget
// (union-bound MinK), N from the detection requirement, then a K re-check
// at the sized fleet — the analytical core of the gbd-design workflow.
func (s *Server) computeDesign(ctx context.Context, p detect.Params, req DesignRequest) (*DesignResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	const provisionalN = 120
	k, err := gbd.MinK(p.WithN(provisionalN), req.FalseAlarmP, req.Horizon, req.Budget)
	if err != nil {
		return nil, err
	}
	p = p.WithK(k)
	n, err := gbd.RequiredSensors(p, req.TargetProb, req.NMax, gbd.MSOptions{})
	if err != nil {
		return nil, fmt.Errorf("sizing the fleet: %w", err)
	}
	k2, err := gbd.MinK(p.WithN(n), req.FalseAlarmP, req.Horizon, req.Budget)
	if err != nil {
		return nil, err
	}
	if k2 != k {
		p = p.WithK(k2)
		n, err = gbd.RequiredSensors(p, req.TargetProb, req.NMax, gbd.MSOptions{})
		if err != nil {
			return nil, fmt.Errorf("re-sizing the fleet for K=%d: %w", k2, err)
		}
		k = k2
	}
	p = p.WithN(n)
	ana, err := gbd.AnalyzeCtx(ctx, p, gbd.MSOptions{})
	if err != nil {
		return nil, err
	}
	resp := &DesignResponse{
		Scenario: echoParams(p), K: k, N: n,
		DetectionProb: ana.DetectionProb,
		TargetProb:    req.TargetProb, FalseAlarmP: req.FalseAlarmP,
		Budget: req.Budget, Horizon: req.Horizon,
	}
	// The §6 exact bound rides along: tighter than the union-bound K when
	// the scan-statistic chain is tractable, reported as 0 otherwise.
	if kExact, err := gbd.MinKExact(p, req.FalseAlarmP, req.Horizon, req.Budget); err == nil {
		resp.KMinExact = kExact
	} else if !errors.Is(err, falsealarm.ErrIntractable) {
		return nil, err
	}
	return resp, nil
}

// designKey resolves a DesignRequest's defaults (mutating it) and
// returns its scenario parameters and cache key.
func (s *Server) designKey(req *DesignRequest) (detect.Params, string, error) {
	req.withDefaults()
	p, err := req.Scenario.params()
	if err != nil {
		return p, "", err
	}
	canon := designCanonical{
		Scenario:    echoParams(p),
		TargetProb:  req.TargetProb,
		FalseAlarmP: req.FalseAlarmP,
		Budget:      req.Budget,
		Horizon:     req.Horizon,
		NMax:        req.NMax,
	}
	canon.Scenario.N, canon.Scenario.K = 0, 0 // outputs, not identity
	key, err := cacheKey("/v1/design", canon, 0)
	return p, key, err
}

func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	var req DesignRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	p, key, err := s.designKey(&req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.serveCached(w, r, key, marshalForward("/v1/design", req), func(ctx context.Context) (any, error) {
		return s.computeDesign(ctx, p, req)
	})
}

// ---- /v1/latency ----

// LatencyResponse is the /v1/latency result: the analytical detection
// latency CDF over sensing periods 1..M. DetectionProb is the CDF's last
// point — the paper's end-of-window detection probability.
type LatencyResponse struct {
	Scenario      scenarioEcho `json:"scenario"`
	FirstPeriod   int          `json:"first_period"`
	P             []float64    `json:"p"`
	DetectionProb float64      `json:"detection_prob"`
}

type latencyCanonical struct {
	Scenario scenarioEcho   `json:"scenario"`
	Options  AnalyzeOptions `json:"options"`
}

func (s *Server) computeLatency(ctx context.Context, p detect.Params, req LatencyRequest) (*LatencyResponse, error) {
	cdf, err := gbd.LatencyCtx(ctx, p, req.Options.msOptions())
	if err != nil {
		return nil, err
	}
	return &LatencyResponse{
		Scenario:      echoParams(p),
		FirstPeriod:   cdf.FirstPeriod,
		P:             cdf.P,
		DetectionProb: cdf.P[len(cdf.P)-1],
	}, nil
}

// latencyKey canonicalizes a LatencyRequest into its resolved parameters
// and cache key.
func (s *Server) latencyKey(req LatencyRequest) (detect.Params, string, error) {
	p, err := req.Scenario.params()
	if err != nil {
		return p, "", err
	}
	key, err := cacheKey("/v1/latency", latencyCanonical{Scenario: echoParams(p), Options: req.Options}, 0)
	return p, key, err
}

func (s *Server) handleLatency(w http.ResponseWriter, r *http.Request) {
	var req LatencyRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	p, key, err := s.latencyKey(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.serveCached(w, r, key, marshalForward("/v1/latency", req), func(ctx context.Context) (any, error) {
		return s.computeLatency(ctx, p, req)
	})
}

// ---- /v1/simulate ----

// FaultSummary echoes the fault-injection accounting of a simulated
// campaign (zero-valued and omitted when no faults were configured).
type FaultSummary struct {
	Generated     int     `json:"generated"`
	Delivered     int     `json:"delivered"`
	Late          int     `json:"late"`
	Lost          int     `json:"lost"`
	Rerouted      int     `json:"rerouted"`
	MeanAliveFrac float64 `json:"mean_alive_frac"`
	ArrivedFrac   float64 `json:"arrived_frac"`
}

// SimulateResponse is the /v1/simulate result.
type SimulateResponse struct {
	Scenario      scenarioEcho  `json:"scenario"`
	Trials        int           `json:"trials"`
	Detections    int           `json:"detections"`
	DetectionProb float64       `json:"detection_prob"`
	CILo          float64       `json:"ci_lo"`
	CIHi          float64       `json:"ci_hi"`
	MeanReports   float64       `json:"mean_reports"`
	Faults        *FaultSummary `json:"faults,omitempty"`
}

type simulateCanonical struct {
	Scenario   scenarioEcho `json:"scenario"`
	Trials     int          `json:"trials"`
	DeadFrac   float64      `json:"dead_frac"`
	CommRange  float64      `json:"comm_range"`
	PerHopLoss float64      `json:"per_hop_loss"`
	HopRetries int          `json:"hop_retries"`
	// RNG is the resolved scheme's canonical spelling ("" for legacy):
	// campaigns under different schemes are different results and must
	// never share a cache entry.
	RNG string `json:"rng,omitempty"`
}

// simConfig translates a SimulateRequest into a simulator configuration.
// Workers is pinned to 1: intra-request parallelism is the admission
// pool's job, and trial results are scheduling-independent anyway.
func (s *Server) simConfig(p detect.Params, req SimulateRequest) (sim.Config, error) {
	if req.Trials < 1 || req.Trials > s.cfg.MaxTrials {
		return sim.Config{}, fmt.Errorf("trials = %d must be in [1, %d]: %w", req.Trials, s.cfg.MaxTrials, ErrRequest)
	}
	if req.DeadFrac < 0 || req.DeadFrac > 1 {
		return sim.Config{}, fmt.Errorf("dead_frac = %v must be in [0, 1]: %w", req.DeadFrac, ErrRequest)
	}
	if req.PerHopLoss < 0 || req.PerHopLoss >= 1 {
		return sim.Config{}, fmt.Errorf("per_hop_loss = %v must be in [0, 1): %w", req.PerHopLoss, ErrRequest)
	}
	if req.HopRetries < 0 {
		return sim.Config{}, fmt.Errorf("hop_retries = %d must be >= 0: %w", req.HopRetries, ErrRequest)
	}
	scheme, err := s.resolveRNG(req.RNG)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Config{
		Params:  p,
		Trials:  req.Trials,
		Seed:    req.Seed,
		Workers: 1,
		RNG:     scheme,
	}
	if req.DeadFrac > 0 {
		cfg.Faults = faults.Bernoulli{DeadFrac: req.DeadFrac}
	}
	if req.CommRange > 0 {
		cfg.CommRange = req.CommRange
		cfg.Loss = netsim.LossModel{
			PerHopDelivery: 1 - req.PerHopLoss,
			MaxRetries:     req.HopRetries,
			PerHop:         10 * time.Second,
			Backoff:        5 * time.Second,
			Budget:         p.T,
		}
	}
	return cfg, nil
}

func (s *Server) computeSimulate(ctx context.Context, p detect.Params, req SimulateRequest) (*SimulateResponse, error) {
	cfg, err := s.simConfig(p, req)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	resp := &SimulateResponse{
		Scenario:      echoParams(p),
		Trials:        res.Trials,
		Detections:    res.Detections,
		DetectionProb: res.DetectionProb,
		CILo:          res.CI.Lo,
		CIHi:          res.CI.Hi,
		MeanReports:   res.MeanReports,
	}
	if cfg.Faults != nil || cfg.CommRange > 0 {
		f := res.Faults
		resp.Faults = &FaultSummary{
			Generated: f.Generated, Delivered: f.Delivered,
			Late: f.Late, Lost: f.Lost, Rerouted: f.Rerouted,
			MeanAliveFrac: f.MeanAliveFrac, ArrivedFrac: f.ArrivedFrac(),
		}
	}
	return resp, nil
}

// simulateKey validates a SimulateRequest and returns its resolved
// parameters and cache key. Seed participates through the fingerprint's
// seed slot: campaigns are deterministic per (config, seed), so caching
// them is sound.
func (s *Server) simulateKey(req SimulateRequest) (detect.Params, string, error) {
	p, err := req.Scenario.params()
	if err != nil {
		return p, "", err
	}
	if _, err := s.simConfig(p, req); err != nil {
		return p, "", err
	}
	scheme, err := s.resolveRNG(req.RNG)
	if err != nil {
		return p, "", err
	}
	canon := simulateCanonical{
		Scenario: echoParams(p), Trials: req.Trials,
		DeadFrac: req.DeadFrac, CommRange: req.CommRange,
		PerHopLoss: req.PerHopLoss, HopRetries: req.HopRetries,
		RNG: canonRNG(scheme),
	}
	key, err := cacheKey("/v1/simulate", canon, req.Seed)
	return p, key, err
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	p, key, err := s.simulateKey(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.serveCached(w, r, key, marshalForward("/v1/simulate", req), func(ctx context.Context) (any, error) {
		return s.computeSimulate(ctx, p, req)
	})
}

// ---- /v1/experiments/{id} ----

// TableResponse is a rendered experiment table.
type TableResponse struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

type experimentCanonical struct {
	ID     string `json:"id"`
	Quick  bool   `json:"quick"`
	Trials int    `json:"trials"`
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := experiments.Lookup(id); !ok {
		serveErrors.Inc()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		resp, _ := json.Marshal(map[string]string{"error": fmt.Sprintf("unknown experiment %q", id)})
		w.Write(append(resp, '\n'))
		return
	}
	q := r.URL.Query()
	quick := q.Get("quick") != "0" // interactive default: reduced sweeps
	trials := 0
	if v := q.Get("trials"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &trials); err != nil || trials < 0 || trials > s.cfg.MaxTrials {
			s.writeError(w, fmt.Errorf("trials = %q must be an integer in [0, %d]: %w", v, s.cfg.MaxTrials, ErrRequest))
			return
		}
	}
	seed := int64(1)
	if v := q.Get("seed"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &seed); err != nil {
			s.writeError(w, fmt.Errorf("seed = %q must be an integer: %w", v, ErrRequest))
			return
		}
	}
	key, err := cacheKey("/v1/experiments", experimentCanonical{ID: id, Quick: quick, Trials: trials}, seed)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Experiments are GET-with-query (no JSON body to replay), so they are
	// never peer-forwarded — each replica computes them locally.
	s.serveCached(w, r, key, nil, func(ctx context.Context) (any, error) {
		tbl, err := experiments.RunOne(id, experiments.Options{
			Trials:       trials,
			Seed:         seed,
			Quick:        quick,
			SweepWorkers: s.cfg.SweepWorkers,
			Ctx:          ctx,
			Retries:      s.cfg.Retries,
			RetryBackoff: s.cfg.RetryBackoff,
			PointTimeout: s.cfg.PointTimeout,
		})
		if err != nil {
			return nil, err
		}
		return &TableResponse{
			ID: tbl.ID, Title: tbl.Title,
			Columns: tbl.Columns, Rows: tbl.Rows, Notes: tbl.Notes,
		}, nil
	})
}
