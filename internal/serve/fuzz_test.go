// Fuzz coverage for the request-canonicalization layer: arbitrary raw
// bodies must never panic the decoder or the key derivation, and any
// body that is accepted must canonicalize deterministically — the same
// bytes always land on the same cache key. Key stability is the safety
// property the whole cache rests on: a nondeterministic key would let
// one request populate an entry another spelling of itself misses, or
// worse, collide two different requests.
package serve

import (
	"testing"
)

// fuzzServer is shared across fuzz iterations; key derivation is
// read-only on the server (config lookups), so this is race-free.
var fuzzServer = New(Config{})

func FuzzCanonicalizeAnalyze(f *testing.F) {
	f.Add([]byte(`{"scenario":{}}`))
	f.Add([]byte(`{"scenario":{"n":100,"v":5},"options":{"gh":4,"g":4},"h_nodes":2}`))
	f.Add([]byte(`{"scenario":{"pd":0.9},"rng":"philox"}`))
	f.Add([]byte(`{"scenario":{"period_seconds":1e308}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"scenario":{"n":-1}}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		var req AnalyzeRequest
		if err := decodeBytes(body, &req); err != nil {
			return
		}
		_, key, err := fuzzServer.analyzeKey(req)
		if err != nil {
			return
		}
		var req2 AnalyzeRequest
		if err := decodeBytes(body, &req2); err != nil {
			t.Fatalf("body decoded once but not twice: %v", err)
		}
		_, key2, err := fuzzServer.analyzeKey(req2)
		if err != nil {
			t.Fatalf("body keyed once but not twice: %v", err)
		}
		if key != key2 {
			t.Errorf("unstable cache key for %q: %q vs %q", body, key, key2)
		}
	})
}

func FuzzCanonicalizeSimulate(f *testing.F) {
	f.Add([]byte(`{"scenario":{},"trials":100,"seed":42}`))
	f.Add([]byte(`{"scenario":{"n":60},"trials":50,"dead_frac":0.2,"comm_range":6000,"per_hop_loss":0.1,"hop_retries":2}`))
	f.Add([]byte(`{"scenario":{},"trials":1,"rng":"legacy"}`))
	f.Add([]byte(`{"scenario":{},"trials":-5}`))
	f.Add([]byte(`{"trials":100}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		var req SimulateRequest
		if err := decodeBytes(body, &req); err != nil {
			return
		}
		_, key, err := fuzzServer.simulateKey(req)
		if err != nil {
			return
		}
		var req2 SimulateRequest
		if err := decodeBytes(body, &req2); err != nil {
			t.Fatalf("body decoded once but not twice: %v", err)
		}
		_, key2, err := fuzzServer.simulateKey(req2)
		if err != nil {
			t.Fatalf("body keyed once but not twice: %v", err)
		}
		if key != key2 {
			t.Errorf("unstable cache key for %q: %q vs %q", body, key, key2)
		}
	})
}

func FuzzCanonicalizeInfer(f *testing.F) {
	f.Add([]byte(`{"scenario":{},"trials":100,"seed":42,"dead_frac":0.2}`))
	f.Add([]byte(`{"scenario":{"n":60},"trials":50,"p_deliver":0.9,"beacons":true,"alpha":0.01,"beta":0.01}`))
	f.Add([]byte(`{"scenario":{},"trials":50,"beacons":false,"rng":"philox"}`))
	f.Add([]byte(`{"scenario":{},"trials":50,"p_deliver":0}`))
	f.Add([]byte(`{"scenario":{},"trials":50,"alpha":0.9}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		var req InferRequest
		if err := decodeBytes(body, &req); err != nil {
			return
		}
		_, _, key, err := fuzzServer.inferKey(req)
		if err != nil {
			return
		}
		var req2 InferRequest
		if err := decodeBytes(body, &req2); err != nil {
			t.Fatalf("body decoded once but not twice: %v", err)
		}
		_, _, key2, err := fuzzServer.inferKey(req2)
		if err != nil {
			t.Fatalf("body keyed once but not twice: %v", err)
		}
		if key != key2 {
			t.Errorf("unstable cache key for %q: %q vs %q", body, key, key2)
		}
	})
}
