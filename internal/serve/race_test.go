package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentBitIdentical is the serving layer's concurrency proof
// (run it under -race): at least 64 overlapping /v1/analyze and /v1/sweep
// requests — a mix of cache hits, misses, and in-flight duplicates — must
// each return a body bit-identical to the sequential direct-call result,
// and the cache accounting must balance exactly (hits + misses ==
// lookups).
func TestConcurrentBitIdentical(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 1024, SweepWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Distinct analyze bodies; several spellings canonicalize onto shared
	// keys so concurrent requests exercise hit/dedup paths, not just
	// misses.
	analyzeBodies := []string{
		`{"scenario":{}}`,
		`{"scenario":{"n":120}}`, // same key as the default spelling
		`{"scenario":{"n":100}}`,
		`{"scenario":{"n":140}}`,
		`{"scenario":{"v":5}}`,
		`{"scenario":{"k":4}}`,
		`{"scenario":{"m":15}}`,
		`{"scenario":{},"h_nodes":2}`,
	}
	sweepBodies := []string{
		`{"scenario":{},"axis":"n","values":[60,90,120,150]}`,
		`{"scenario":{},"axis":"v","values":[5,10,15]}`,
	}

	// Sequential ground truth, computed through direct calls to the same
	// compute functions the handlers use — byte-for-byte what a
	// lone, uncontended request would produce.
	ctx := context.Background()
	expectAnalyze := make(map[string][]byte)
	for _, body := range analyzeBodies {
		var req AnalyzeRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		p, _, err := s.analyzeKey(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := s.computeAnalyze(ctx, p, req)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		expectAnalyze[body] = append(blob, '\n')
	}
	expectSweep := make(map[string][]byte)
	for _, body := range sweepBodies {
		var req SweepRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		base, err := req.Scenario.params()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for i, v := range req.Values {
			row, err := s.sweepPoint(ctx, base, req, i, v)
			if err != nil {
				t.Fatal(err)
			}
			enc.Encode(row)
		}
		expectSweep[body] = buf.Bytes()
	}

	lookups0 := cacheLookups.Value()
	hits0 := cacheHits.Value()
	misses0 := cacheMisses.Value()
	fwd0 := peerForwards.Value()

	const total = 96 // 64+ overlapping requests, interleaving both endpoints
	var wg sync.WaitGroup
	errs := make(chan error, total)
	for i := 0; i < total; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var path, body string
			var want []byte
			if i%3 == 2 {
				body = sweepBodies[i%len(sweepBodies)]
				path, want = "/v1/sweep", expectSweep[body]
			} else {
				body = analyzeBodies[i%len(analyzeBodies)]
				path, want = "/v1/analyze", expectAnalyze[body]
			}
			resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			got, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, got)
				return
			}
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("%s %s: response differs from sequential result:\ngot  %q\nwant %q", path, body, got, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	lookups := cacheLookups.Value() - lookups0
	hits := cacheHits.Value() - hits0
	misses := cacheMisses.Value() - misses0
	forwards := peerForwards.Value() - fwd0
	if hits+misses+forwards != lookups {
		t.Errorf("cache accounting broken: hits %d + misses %d + forwards %d != lookups %d", hits, misses, forwards, lookups)
	}
	if forwards != 0 {
		t.Errorf("unsharded server forwarded %d lookups", forwards)
	}
	if lookups == 0 || hits == 0 {
		t.Errorf("expected both hits and misses under this load: lookups=%d hits=%d", lookups, hits)
	}
}

// TestShutdownDrainsStreams: a graceful shutdown issued mid-stream lets
// every in-flight NDJSON sweep run to completion — no dropped rows, no
// duplicated rows — while new connections are refused. This is the
// in-process half of the SIGINT drain contract; the cmd/gbd-server
// subprocess test covers the real-signal half.
func TestShutdownDrainsStreams(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64, SweepWorkers: 1, RequestTimeout: time.Minute})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	serveDone := make(chan struct{})
	go func() {
		hs.Serve(ln)
		close(serveDone)
	}()
	base := "http://" + ln.Addr().String()

	// Trials make each point slow enough that the streams are provably
	// mid-flight when Shutdown lands.
	const streams = 4
	const points = 6
	body := `{"scenario":{},"axis":"n","values":[60,80,100,120,140,160],"trials":1500,"seed":3}`
	streams0 := sweepStreams.Value()
	type result struct {
		body []byte
		err  error
	}
	results := make(chan result, streams)
	for i := 0; i < streams; i++ {
		go func() {
			resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(body))
			if err != nil {
				results <- result{nil, err}
				return
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			results <- result{data, err}
		}()
	}

	// Wait until all streams have started, then shut down mid-stream.
	deadline := time.Now().Add(10 * time.Second)
	for sweepStreams.Value()-streams0 < streams {
		if time.Now().After(deadline) {
			t.Fatalf("streams never started: %d of %d", sweepStreams.Value()-streams0, streams)
		}
		time.Sleep(time.Millisecond)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}
	<-serveDone

	for i := 0; i < streams; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("stream %d: %v", i, r.err)
		}
		rows := parseRows(t, r.body)
		if len(rows) != points {
			t.Fatalf("stream %d: %d rows, want %d (drain must not drop rows):\n%s", i, len(rows), points, r.body)
		}
		seen := make(map[int]bool)
		for j, row := range rows {
			if row.Index != j {
				t.Errorf("stream %d: row %d has index %d (order broken)", i, j, row.Index)
			}
			if seen[row.Index] {
				t.Errorf("stream %d: duplicated row index %d", i, row.Index)
			}
			seen[row.Index] = true
			if row.Error != "" {
				t.Errorf("stream %d row %d: drained stream must finish its points, got error %q", i, j, row.Error)
			}
		}
	}

	// The drained server accepts nothing new.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("request after shutdown should fail")
	}
}
