package serve

import (
	"container/list"
	"sync"
)

// resultCache is a size-bounded LRU over rendered response bodies. Values
// are the exact bytes written to the wire, so a cache hit is bit-identical
// to the response that populated it. The lock is held only for map and
// list pointer updates — never across a computation — so the cache cannot
// serialize request handling.
//
// Lookups are metrics-free: the call site classifies each one as exactly
// one of hit, miss, or peer-forward (metrics.go), because only the caller
// knows whether a miss was computed locally or satisfied by the key's
// owning replica.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

// cacheEntry is one LRU slot. An entry may carry one alias — the raw
// request-body digest attached by the fast path — indexed in the same
// map but charged against the same slot: the alias lives and dies with
// the entry instead of occupying (and leaking) LRU capacity of its own.
type cacheEntry struct {
	key   string
	alias string
	body  []byte
}

// newResultCache builds an LRU holding at most capacity entries;
// capacity <= 0 disables caching (every lookup misses, adds are dropped).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached body for key and whether it was present.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// getBytes is get with a byte-slice key. The map index is spelled
// c.items[string(key)] so the compiler's map-lookup special case elides
// the string conversion — the cache-hit fast path hashes the raw request
// bytes into a stack array and looks it up here without allocating.
func (c *resultCache) getBytes(key []byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[string(key)]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// add stores body under key, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes its recency.
func (c *resultCache) add(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		e := oldest.Value.(*cacheEntry)
		delete(c.items, e.key)
		if e.alias != "" {
			delete(c.items, e.alias)
		}
		cacheEvictions.Inc()
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	cacheEntries.Set(int64(c.order.Len()))
}

// attachAlias indexes the entry stored under key by a second map key
// (the raw-body digest) without consuming an LRU slot: the alias shares
// the entry's slot and is removed with it on eviction. A no-op when the
// key is absent or caching is disabled.
func (c *resultCache) attachAlias(key, alias string) {
	if c.cap <= 0 || alias == "" || alias == key {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return
	}
	e := el.Value.(*cacheEntry)
	if e.alias == alias {
		return
	}
	// If the alias currently indexes another entry (possible only across
	// weird re-keying; defensive), detach it there first so one alias
	// never points at two slots.
	if old, ok := c.items[alias]; ok && old != el {
		old.Value.(*cacheEntry).alias = ""
	}
	if e.alias != "" {
		delete(c.items, e.alias)
	}
	e.alias = alias
	c.items[alias] = el
}

// len returns the current entry count (aliases share their entry's slot
// and are not counted).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
