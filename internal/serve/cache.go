package serve

import (
	"container/list"
	"sync"
)

// resultCache is a size-bounded LRU over rendered response bodies. Values
// are the exact bytes written to the wire, so a cache hit is bit-identical
// to the response that populated it. The lock is held only for map and
// list pointer updates — never across a computation — so the cache cannot
// serialize request handling.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache builds an LRU holding at most capacity entries;
// capacity <= 0 disables caching (every lookup misses, adds are dropped).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached body for key and whether it was present,
// recording the lookup outcome in the cache metrics.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cacheLookups.Inc()
	el, ok := c.items[key]
	if !ok {
		cacheMisses.Inc()
		return nil, false
	}
	cacheHits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// getBytes is get with a byte-slice key. The map index is spelled
// c.items[string(key)] so the compiler's map-lookup special case elides
// the string conversion — the cache-hit fast path hashes the raw request
// bytes into a stack array and looks it up here without allocating.
func (c *resultCache) getBytes(key []byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cacheLookups.Inc()
	el, ok := c.items[string(key)]
	if !ok {
		cacheMisses.Inc()
		return nil, false
	}
	cacheHits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// add stores body under key, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes its recency.
func (c *resultCache) add(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		cacheEvictions.Inc()
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	cacheEntries.Set(int64(c.order.Len()))
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
