package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestInferEndpoint runs the canonical closed-loop scenario (20%
// Bernoulli death, 0.9 uplink delivery, beacons) through /v1/infer and
// checks the acceptance bars the CLI and CI gates enforce.
func TestInferEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, _, data := post(t, ts, "/v1/infer",
		`{"scenario":{},"trials":150,"seed":42,"dead_frac":0.2}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var resp InferResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Precision < 0.9 || resp.Recall < 0.9 {
		t.Errorf("precision %.4f / recall %.4f, want both >= 0.9", resp.Precision, resp.Recall)
	}
	if resp.MeanTTD <= 0 || resp.MeanTTD > 6 {
		t.Errorf("mean_ttd = %.2f, want in (0, 6]", resp.MeanTTD)
	}
	if resp.AbsDiff > 0.05 {
		t.Errorf("abs_diff = %.4f exceeds the documented 0.05 tolerance", resp.AbsDiff)
	}
	if resp.PDeliverHat < 0.88 || resp.PDeliverHat > 0.92 {
		t.Errorf("p_deliver_hat = %.4f, want near 0.9", resp.PDeliverHat)
	}
	if resp.TruthDeadFrac < 0.15 || resp.TruthDeadFrac > 0.25 {
		t.Errorf("truth_dead_frac = %.4f, want near 0.2", resp.TruthDeadFrac)
	}

	// A repeat of the same campaign is a cache hit with identical bytes.
	code2, xc, data2 := post(t, ts, "/v1/infer",
		`{"scenario":{},"trials":150,"seed":42,"dead_frac":0.2}`)
	if code2 != http.StatusOK || xc != "hit" {
		t.Errorf("repeat: status %d X-Cache %q, want 200 hit", code2, xc)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("cache hit returned different bytes")
	}
}

// TestInferCanonicalization: spelled-out defaults share the cache entry;
// any knob mutation (alpha, p_deliver, beacons, seed) separates it.
func TestInferCanonicalization(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	base := `{"scenario":{},"trials":50,"seed":7,"dead_frac":0.2}`
	spelled := `{"scenario":{},"trials":50,"seed":7,"dead_frac":0.2,"p_deliver":0.9,"beacons":true}`
	if code, _, data := post(t, ts, "/v1/infer", base); code != http.StatusOK {
		t.Fatalf("base: status %d: %s", code, data)
	}
	if code, xc, _ := post(t, ts, "/v1/infer", spelled); code != http.StatusOK || xc != "hit" {
		t.Errorf("spelled defaults: status %d X-Cache %q, want 200 hit", code, xc)
	}
	for _, mutated := range []string{
		`{"scenario":{},"trials":50,"seed":7,"dead_frac":0.2,"alpha":0.05}`,
		`{"scenario":{},"trials":50,"seed":7,"dead_frac":0.2,"p_deliver":0.8}`,
		`{"scenario":{},"trials":50,"seed":7,"dead_frac":0.2,"beacons":false}`,
		`{"scenario":{},"trials":50,"seed":8,"dead_frac":0.2}`,
		`{"scenario":{},"trials":50,"seed":7,"dead_frac":0.2,"rng":"philox"}`,
	} {
		if code, xc, data := post(t, ts, "/v1/infer", mutated); code != http.StatusOK || xc == "hit" {
			t.Errorf("mutation %s: status %d X-Cache %q, want 200 miss: %s", mutated, code, xc, data)
		}
	}
}

func TestInferValidation(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	for _, body := range []string{
		`{"scenario":{},"trials":0}`,
		`{"scenario":{},"trials":50,"dead_frac":1.5}`,
		`{"scenario":{},"trials":50,"p_deliver":0}`,
		`{"scenario":{},"trials":50,"p_deliver":1.2}`,
		`{"scenario":{},"trials":50,"alpha":0.7}`,
		`{"scenario":{},"trials":50,"beta":-0.1}`,
		`{"scenario":{},"trials":50,"rng":"mt19937"}`,
		`{"scenario":{"n":0},"trials":50}`,
	} {
		if code, _, data := post(t, ts, "/v1/infer", body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", body, code, data)
		}
	}
}

// TestInferBatchOp: the "infer" batch op renders bytes bit-identical to
// the standalone endpoint and shares its cache entries.
func TestInferBatchOp(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	body := `{"scenario":{},"trials":60,"seed":3,"dead_frac":0.2}`
	code, _, standalone := post(t, ts, "/v1/infer", body)
	if code != http.StatusOK {
		t.Fatalf("standalone: status %d: %s", code, standalone)
	}
	code, xc, batched := post(t, ts, "/v1/batch",
		fmt.Sprintf(`{"items":[{"op":"infer","request":%s}]}`, body))
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, batched)
	}
	if xc != "hit=1,miss=0,forward=0,error=0" {
		t.Errorf("batch X-Cache = %q: the infer op should hit the standalone entry", xc)
	}
	if !bytes.Equal(standalone, batched) {
		t.Errorf("batch line differs from standalone response:\n%s\nvs\n%s", batched, standalone)
	}
}

// TestForwardStalledOwner: a peer that accepts connections but never
// answers must cost one PeerTimeout, trip its breaker, and fall back to
// local compute — not stall the request for the full RequestTimeout.
func TestForwardStalledOwner(t *testing.T) {
	// The stalled "replica": accepts and then holds every connection open
	// without writing a byte until the test ends.
	stallLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stallLn.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			conn, err := stallLn.Accept()
			if err != nil {
				return
			}
			go func() {
				<-stop
				conn.Close()
			}()
		}
	}()
	stallURL := "http://" + stallLn.Addr().String()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	selfURL := "http://" + ln.Addr().String()
	cfg := Config{
		Workers: 2, QueueDepth: 16,
		Peers: []string{selfURL, stallURL}, Self: selfURL,
		PeerTimeout:    150 * time.Millisecond,
		RequestTimeout: 30 * time.Second,
		PeerCooldown:   time.Hour,
	}
	if err := cfg.ValidatePeers(); err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	// Find a body the stalled peer owns, so the forward path is exercised.
	var body string
	for n := 60; n < 300; n += 2 {
		candidate := fmt.Sprintf(`{"scenario":{"n":%d}}`, n)
		var req AnalyzeRequest
		if err := json.Unmarshal([]byte(candidate), &req); err != nil {
			t.Fatal(err)
		}
		_, key, err := s.analyzeKey(req)
		if err != nil {
			t.Fatal(err)
		}
		if m, _, self := s.peers.Route(key); !self && m == 1 {
			body = candidate
			break
		}
	}
	if body == "" {
		t.Skip("hash split left the stalled peer with no sampled keys (vanishingly unlikely)")
	}

	deaths0 := peerDeaths.Value()
	t0 := time.Now()
	code, data, err := fleetPost(selfURL, "/v1/analyze", body)
	elapsed := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK {
		t.Fatalf("status %d (a stalled owner must never surface as an error): %s", code, data)
	}
	// One PeerTimeout of probing plus local compute, nowhere near the
	// 30s request deadline a stalled connection would otherwise burn.
	if elapsed > 5*time.Second {
		t.Errorf("request took %v: the per-forward timeout did not fire", elapsed)
	}
	if peerDeaths.Value() == deaths0 {
		t.Error("stalled owner never tripped its breaker")
	}
	// With the breaker open, the key re-routes away from the stalled peer
	// and repeat traffic is served without paying the timeout again.
	t0 = time.Now()
	if code, _, err := fleetPost(selfURL, "/v1/analyze", body); err != nil || code != http.StatusOK {
		t.Fatalf("repeat: code %d err %v", code, err)
	}
	if elapsed := time.Since(t0); elapsed > time.Second {
		t.Errorf("repeat request took %v: breaker did not keep the stalled peer out", elapsed)
	}
}
