// Package track implements the "mapped to a possible target track" filter
// that group-based detection applies to report sequences (Section 2). The
// paper abstracts the filter away; deployed systems realize it with a
// kinematic gate: a set of reports is track-consistent when some target
// moving at most a maximum speed could have produced all of them. This
// package provides that gate plus the k-of-M sliding-window scanner, and is
// the machinery behind the false-alarm experiments.
package track

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/groupdetect/gbd/internal/geom"
)

// ErrGate reports invalid gating parameters.
var ErrGate = errors.New("track: invalid gate")

// Report is a single node-level detection report.
type Report struct {
	// Sensor identifies the reporting node.
	Sensor int
	// Pos is the reporting node's position (the report's location estimate:
	// the target was within Rs of it).
	Pos geom.Point
	// Period is the sensing period index in which the report was generated.
	Period int
}

// Gate is the kinematic consistency test. Two reports are compatible when
// the target could have traveled between their sensing disks in the elapsed
// periods: dist <= MaxSpeed * dt * Period + 2 * Slack, where Slack is the
// sensing range (each report only localizes the target to within Rs).
type Gate struct {
	// MaxSpeed is the fastest target considered, in m/s.
	MaxSpeed float64
	// Period is the sensing period length.
	Period time.Duration
	// Slack is the position uncertainty per report, normally the sensing
	// range Rs.
	Slack float64
}

// NewGate validates and returns a gate.
func NewGate(maxSpeed float64, period time.Duration, slack float64) (Gate, error) {
	if maxSpeed <= 0 {
		return Gate{}, fmt.Errorf("max speed %v: %w", maxSpeed, ErrGate)
	}
	if period <= 0 {
		return Gate{}, fmt.Errorf("period %v: %w", period, ErrGate)
	}
	if slack < 0 {
		return Gate{}, fmt.Errorf("slack %v: %w", slack, ErrGate)
	}
	return Gate{MaxSpeed: maxSpeed, Period: period, Slack: slack}, nil
}

// Compatible reports whether reports a and b could stem from one target.
// Reports from the same period are compatible when their disks could see
// the same point (distance <= 2*Slack plus the within-period travel).
func (g Gate) Compatible(a, b Report) bool {
	dp := a.Period - b.Period
	if dp < 0 {
		dp = -dp
	}
	// Within a period the target moves up to one step as well.
	reach := g.MaxSpeed*g.Period.Seconds()*float64(dp+1) + 2*g.Slack
	return a.Pos.Dist(b.Pos) <= reach
}

// LongestChain returns the size of the largest subset of reports that is
// pairwise-chainable in period order: a sequence r1, r2, ... (periods
// non-decreasing) where each consecutive pair is Compatible. This is the
// standard single-target track-before-detect association relaxation; it
// never underestimates the true single-target association size.
func (g Gate) LongestChain(reports []Report) int {
	if len(reports) == 0 {
		return 0
	}
	rs := append([]Report(nil), reports...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Period < rs[j].Period })
	best := make([]int, len(rs))
	overall := 0
	for i := range rs {
		best[i] = 1
		for j := 0; j < i; j++ {
			if best[j]+1 > best[i] && g.Compatible(rs[j], rs[i]) {
				best[i] = best[j] + 1
			}
		}
		if best[i] > overall {
			overall = best[i]
		}
	}
	return overall
}

// Decision is the outcome of the group-based detection rule on a report
// stream.
type Decision struct {
	// Detected reports whether some M-period window contained a
	// track-consistent chain of at least K reports.
	Detected bool
	// Window is the first period of the triggering window (meaningful only
	// when Detected).
	Window int
	// ChainLen is the longest track-consistent chain found in any window.
	ChainLen int
}

// Decide applies the full group-based detection rule from Section 2: scan
// every window of m consecutive periods and trigger when the longest
// track-consistent chain within the window reaches k. Reports outside any
// window are ignored. gated=false skips the kinematic gate and counts raw
// reports per window (the rule the detection-probability analysis models).
func Decide(reports []Report, k, m int, g Gate, gated bool) (Decision, error) {
	if k < 1 || m < 1 {
		return Decision{}, fmt.Errorf("k = %d, m = %d: %w", k, m, ErrGate)
	}
	if len(reports) == 0 {
		return Decision{}, nil
	}
	minP, maxP := reports[0].Period, reports[0].Period
	for _, r := range reports {
		if r.Period < minP {
			minP = r.Period
		}
		if r.Period > maxP {
			maxP = r.Period
		}
	}
	dec := Decision{}
	window := make([]Report, 0, len(reports))
	for start := minP; start <= maxP; start++ {
		window = window[:0]
		for _, r := range reports {
			if r.Period >= start && r.Period < start+m {
				window = append(window, r)
			}
		}
		if len(window) < k || len(window) <= dec.ChainLen && dec.Detected {
			continue
		}
		chain := len(window)
		if gated {
			chain = g.LongestChain(window)
		}
		if chain > dec.ChainLen {
			dec.ChainLen = chain
		}
		if chain >= k && !dec.Detected {
			dec.Detected = true
			dec.Window = start
		}
	}
	return dec, nil
}
