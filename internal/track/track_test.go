package track

import (
	"testing"
	"time"

	"github.com/groupdetect/gbd/internal/field"
	"github.com/groupdetect/gbd/internal/geom"
)

func testGate(t *testing.T) Gate {
	t.Helper()
	g, err := NewGate(10, time.Minute, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGateValidation(t *testing.T) {
	if _, err := NewGate(0, time.Minute, 100); err == nil {
		t.Error("zero speed should fail")
	}
	if _, err := NewGate(10, 0, 100); err == nil {
		t.Error("zero period should fail")
	}
	if _, err := NewGate(10, time.Minute, -1); err == nil {
		t.Error("negative slack should fail")
	}
}

func TestCompatible(t *testing.T) {
	g := testGate(t) // reach per period gap: 600*(dp+1) + 2000
	a := Report{Sensor: 1, Pos: geom.Point{X: 0, Y: 0}, Period: 1}
	near := Report{Sensor: 2, Pos: geom.Point{X: 2500, Y: 0}, Period: 1}
	if !g.Compatible(a, near) {
		t.Error("same-period reports 2500 m apart should be compatible (reach 2600)")
	}
	far := Report{Sensor: 3, Pos: geom.Point{X: 2700, Y: 0}, Period: 1}
	if g.Compatible(a, far) {
		t.Error("same-period reports 2700 m apart should be incompatible")
	}
	later := Report{Sensor: 3, Pos: geom.Point{X: 4000, Y: 0}, Period: 4}
	// reach = 600*4 + 2000 = 4400.
	if !g.Compatible(a, later) {
		t.Error("4-period gap at 4000 m should be compatible")
	}
	if !g.Compatible(later, a) {
		t.Error("compatibility must be symmetric")
	}
}

func TestLongestChainTargetTrack(t *testing.T) {
	g := testGate(t)
	// Reports along a 600 m/period straight track: all chainable.
	var reports []Report
	for p := 1; p <= 6; p++ {
		reports = append(reports, Report{Sensor: p, Pos: geom.Point{X: float64(p) * 600, Y: 0}, Period: p})
	}
	if got := g.LongestChain(reports); got != 6 {
		t.Errorf("chain = %d, want 6", got)
	}
}

func TestLongestChainRejectsScatteredFalseAlarms(t *testing.T) {
	g := testGate(t)
	// False alarms scattered across a 32 km field in distinct periods:
	// pairwise distances far exceed the kinematic reach.
	rng := field.NewRand(5)
	var reports []Report
	for p := 1; p <= 8; p++ {
		reports = append(reports, Report{
			Sensor: p,
			Pos:    geom.Point{X: rng.Float64() * 32000, Y: rng.Float64() * 32000},
			Period: p,
		})
	}
	if got := g.LongestChain(reports); got >= 5 {
		t.Errorf("scattered false alarms chained to %d, expected < 5", got)
	}
}

func TestLongestChainEmpty(t *testing.T) {
	g := testGate(t)
	if g.LongestChain(nil) != 0 {
		t.Error("empty input should give 0")
	}
	one := []Report{{Sensor: 1, Pos: geom.Point{}, Period: 3}}
	if g.LongestChain(one) != 1 {
		t.Error("single report chains to 1")
	}
}

func TestLongestChainDoesNotMutateInput(t *testing.T) {
	g := testGate(t)
	reports := []Report{
		{Sensor: 1, Pos: geom.Point{}, Period: 5},
		{Sensor: 2, Pos: geom.Point{X: 600}, Period: 1},
	}
	_ = g.LongestChain(reports)
	if reports[0].Period != 5 {
		t.Error("LongestChain must not reorder the caller's slice")
	}
}

func TestDecideUngated(t *testing.T) {
	g := testGate(t)
	var reports []Report
	for p := 1; p <= 5; p++ {
		reports = append(reports, Report{Sensor: p, Pos: geom.Point{X: float64(p) * 600}, Period: p})
	}
	dec, err := Decide(reports, 5, 20, g, false)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Detected || dec.ChainLen != 5 {
		t.Errorf("decision = %+v", dec)
	}
	// k = 6 cannot be met.
	dec, err = Decide(reports, 6, 20, g, false)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Detected {
		t.Errorf("k=6 should not trigger: %+v", dec)
	}
}

func TestDecideWindowBoundary(t *testing.T) {
	g := testGate(t)
	// Reports in periods 1 and 30 never share a 20-period window.
	reports := []Report{
		{Sensor: 1, Pos: geom.Point{}, Period: 1},
		{Sensor: 2, Pos: geom.Point{X: 100}, Period: 30},
	}
	dec, err := Decide(reports, 2, 20, g, false)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Detected {
		t.Error("reports 29 periods apart must not trigger k=2, M=20")
	}
	// But periods 1 and 20 do share the window starting at 1.
	reports[1].Period = 20
	dec, err = Decide(reports, 2, 20, g, false)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Detected || dec.Window != 1 {
		t.Errorf("decision = %+v, want detection in window 1", dec)
	}
}

func TestDecideGatedFiltersFalseAlarms(t *testing.T) {
	g := testGate(t)
	// Five scattered false alarms within one window: ungated triggers,
	// gated does not.
	rng := field.NewRand(9)
	var reports []Report
	for p := 1; p <= 5; p++ {
		reports = append(reports, Report{
			Sensor: p,
			Pos:    geom.Point{X: rng.Float64() * 32000, Y: rng.Float64() * 32000},
			Period: p,
		})
	}
	raw, err := Decide(reports, 5, 20, g, false)
	if err != nil {
		t.Fatal(err)
	}
	if !raw.Detected {
		t.Fatal("ungated rule should trigger on 5 reports")
	}
	gated, err := Decide(reports, 5, 20, g, true)
	if err != nil {
		t.Fatal(err)
	}
	if gated.Detected {
		t.Errorf("gated rule should filter scattered false alarms: %+v", gated)
	}
}

func TestDecideGatedAcceptsRealTrack(t *testing.T) {
	g := testGate(t)
	var reports []Report
	for p := 1; p <= 5; p++ {
		reports = append(reports, Report{Sensor: p, Pos: geom.Point{X: float64(p) * 600, Y: 50}, Period: p})
	}
	dec, err := Decide(reports, 5, 20, g, true)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Detected {
		t.Errorf("gated rule should accept a real track: %+v", dec)
	}
}

func TestDecideValidation(t *testing.T) {
	g := testGate(t)
	if _, err := Decide(nil, 0, 20, g, false); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Decide(nil, 5, 0, g, false); err == nil {
		t.Error("m=0 should fail")
	}
	dec, err := Decide(nil, 5, 20, g, false)
	if err != nil || dec.Detected {
		t.Errorf("empty stream: %+v, %v", dec, err)
	}
}
