package checkpoint

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type point struct {
	V float64 `json:"v"`
	N int     `json:"n"`
}

func TestFingerprintDependsOnInputs(t *testing.T) {
	type params struct {
		Trials int
		Quick  bool
	}
	base, err := Fingerprint("gbd-experiments", params{Trials: 1000}, 42)
	if err != nil {
		t.Fatal(err)
	}
	same, err := Fingerprint("gbd-experiments", params{Trials: 1000}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if base != same {
		t.Error("fingerprint not deterministic")
	}
	for name, in := range map[string]struct {
		binary string
		p      params
		seed   int64
	}{
		"binary": {"gbd-faults", params{Trials: 1000}, 42},
		"params": {"gbd-experiments", params{Trials: 1000, Quick: true}, 42},
		"seed":   {"gbd-experiments", params{Trials: 1000}, 7},
	} {
		fp, err := Fingerprint(in.binary, in.p, in.seed)
		if err != nil {
			t.Fatal(err)
		}
		if fp == base {
			t.Errorf("changing %s did not change fingerprint", name)
		}
	}
	if _, err := Fingerprint("x", func() {}, 0); err == nil {
		t.Error("unmarshalable params should fail")
	}
}

func TestCreatePutResumeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	fp, err := Fingerprint("test", map[string]int{"n": 120}, 42)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Create(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]point{
		"fig9a/0": {V: 0.123456789012345, N: 60},
		"fig9a/1": {V: 0.9999999999999999, N: 120},
	}
	for k, v := range want {
		if err := st.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(want))
	}

	re, err := Resume(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		var got point
		ok, err := re.Get(k, &got)
		if err != nil || !ok {
			t.Fatalf("Get(%q) = %v, %v", k, ok, err)
		}
		if got != v {
			t.Errorf("Get(%q) = %+v, want %+v (float64 must round-trip exactly)", k, got, v)
		}
	}
	var missing point
	if ok, err := re.Get("fig9a/2", &missing); ok || err != nil {
		t.Errorf("Get of absent key = %v, %v; want false, nil", ok, err)
	}
}

func TestResumeRejects(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if _, err := Resume(path, "fp"); err == nil {
		t.Error("resume of missing file should fail")
	}

	st, err := Create(path, "fingerprint-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k", point{V: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(path, "fingerprint-b"); !errors.Is(err, ErrFingerprint) {
		t.Errorf("stale fingerprint: err = %v, want ErrFingerprint", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(path, "fingerprint-a"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated file: err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejections(t *testing.T) {
	good, err := Encode("fp", map[string]json.RawMessage{"k": json.RawMessage(`{"v":1}`)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(good, "fp"); err != nil {
		t.Fatalf("good checkpoint rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"truncated":      good[:len(good)-20],
		"trailing data":  append(append([]byte{}, good...), []byte(`{"more": 1}`)...),
		"unknown field":  []byte(`{"version": 1, "fingerprint": "fp", "points": {}, "extra": 1}`),
		"wrong version":  []byte(`{"version": 99, "fingerprint": "fp", "points": {}}`),
		"no fingerprint": []byte(`{"version": 1, "points": {}}`),
		"not an object":  []byte(`[1, 2, 3]`),
	}
	for name, data := range cases {
		if _, err := Decode(data, "fp"); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	if _, err := Decode(good, "other"); !errors.Is(err, ErrFingerprint) {
		t.Errorf("mismatched fingerprint: err = %v, want ErrFingerprint", err)
	}
	// Empty wantFingerprint skips the identity check (inspection mode).
	if _, err := Decode(good, ""); err != nil {
		t.Errorf("inspection decode: %v", err)
	}
}

func TestPutPersistsAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	st, err := Create(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := st.Put("k", point{N: i}); err != nil {
			t.Fatal(err)
		}
		// After every Put the on-disk file is a complete, valid checkpoint
		// and no temp files linger.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		pts, err := Decode(data, "fp")
		if err != nil {
			t.Fatalf("after put %d: %v", i, err)
		}
		var got point
		if err := json.Unmarshal(pts["k"], &got); err != nil || got.N != i {
			t.Fatalf("after put %d: read back %+v, %v", i, got, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestStoreConcurrentPuts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	st, err := Create(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				key := strings.Repeat("x", w+1)
				if err := st.Put(key, point{N: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	re, err := Resume(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 8 {
		t.Errorf("resumed %d keys, want 8", re.Len())
	}
}
