package checkpoint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestResumeAfterTornWrite simulates the crash window of the atomic-write
// protocol: a kill between the temp-file write and the rename leaves the
// previous complete checkpoint at the store path plus a stray temp file.
// Resume must treat the interrupted point as simply incomplete — load the
// previous checkpoint, not fail corrupt-fatal — and sweep the dead temp
// file. This complements the codec fuzz test, which covers corruption of
// the checkpoint file itself.
func TestResumeAfterTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	const fp = "fp-torn"

	s, err := Create(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fig8/0", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fig8/1", 0.5); err != nil {
		t.Fatal(err)
	}

	// The torn write: the next Put got as far as writing its temp file —
	// full or truncated — but was killed before the rename. Reproduce both
	// shapes the crash can leave behind.
	full, err := Encode(fp, map[string]json.RawMessage{
		"fig8/0": json.RawMessage(`0.25`),
		"fig8/1": json.RawMessage(`0.5`),
		"fig8/2": json.RawMessage(`0.75`),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, torn := range []struct {
		name string
		data []byte
	}{
		{path + ".tmp-123456", full},
		{path + ".tmp-654321", full[:len(full)/2]},
	} {
		if err := os.WriteFile(torn.name, torn.data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	r, err := Resume(path, fp)
	if err != nil {
		t.Fatalf("resume after torn write must succeed with the previous checkpoint: %v", err)
	}
	if r.Len() != 2 {
		t.Fatalf("resumed %d points, want the 2 that were durably renamed", r.Len())
	}
	var v float64
	if ok, err := r.Get("fig8/1", &v); err != nil || !ok || v != 0.5 {
		t.Fatalf("durable point lost: ok=%v v=%v err=%v", ok, v, err)
	}
	if ok, _ := r.Get("fig8/2", &v); ok {
		t.Fatal("the torn point must be incomplete, not restored from a temp file")
	}

	stale, err := filepath.Glob(path + ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 0 {
		t.Errorf("stale temp files survived resume: %v", stale)
	}

	// The resumed store keeps working: recomputing the torn point and
	// persisting it must round-trip through a fresh resume.
	if err := r.Put("fig8/2", 0.75); err != nil {
		t.Fatal(err)
	}
	r2, err := Resume(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 3 {
		t.Fatalf("after recompute resumed %d points, want 3", r2.Len())
	}
}

// TestPutBatch checks the batched persistence path the fabric ledger
// uses: one atomic rewrite lands the whole batch, and a resume sees every
// key.
func TestPutBatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "batch.ckpt")
	const fp = "fp-batch"

	s, err := Create(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	batch := map[string]any{
		"row/0": json.RawMessage(`{"index":0}`),
		"row/1": json.RawMessage(`{"index":1}`),
		"row/2": json.RawMessage(`{"index":2}`),
	}
	if err := s.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	r, err := Resume(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	keys := r.Keys()
	if len(keys) != len(batch) {
		t.Fatalf("resumed %d keys, want %d", len(keys), len(batch))
	}
	for k := range batch {
		var raw json.RawMessage
		if ok, err := r.Get(k, &raw); err != nil || !ok {
			t.Fatalf("batch key %q missing after resume: ok=%v err=%v", k, ok, err)
		}
	}
}
