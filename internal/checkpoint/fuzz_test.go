package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the checkpoint codec: it must never
// panic, and anything it accepts must re-encode to a checkpoint that decodes
// to the same point set (a full round-trip). Seeds cover the valid shape and
// the near-miss corruptions the unit tests check explicitly.
func FuzzDecode(f *testing.F) {
	valid, err := Encode("fp-fuzz", map[string]json.RawMessage{
		"fig8/0": json.RawMessage(`{"v":0.123456789012345,"n":60}`),
		"fig8/1": json.RawMessage(`[1,2,3]`),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{"version": 1, "fingerprint": "fp-fuzz", "points": {}}`))
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte{}, valid...), '{', '}'))
	f.Add([]byte(`{"version": 2, "fingerprint": "fp-fuzz", "points": {}}`))
	f.Add([]byte(`{"version": 1, "fingerprint": "other", "points": {}}`))
	f.Add([]byte(`null`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		pts, err := Decode(data, "fp-fuzz")
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFingerprint) {
				t.Fatalf("decode error outside the sentinel taxonomy: %v", err)
			}
			return
		}
		// Accepted input: it must survive an encode/decode round trip with
		// the point set intact.
		re, err := Encode("fp-fuzz", pts)
		if err != nil {
			t.Fatalf("re-encode of accepted checkpoint failed: %v", err)
		}
		pts2, err := Decode(re, "fp-fuzz")
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if len(pts2) != len(pts) {
			t.Fatalf("round trip changed point count: %d -> %d", len(pts), len(pts2))
		}
		for k, v := range pts {
			v2, ok := pts2[k]
			if !ok {
				t.Fatalf("round trip lost key %q", k)
			}
			var a, b any
			if json.Unmarshal(v, &a) == nil && json.Unmarshal(v2, &b) == nil {
				ja, _ := json.Marshal(a)
				jb, _ := json.Marshal(b)
				if !bytes.Equal(ja, jb) {
					t.Fatalf("round trip changed value for %q: %s -> %s", k, v, v2)
				}
			}
		}
	})
}
