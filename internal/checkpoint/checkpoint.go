// Package checkpoint persists completed sweep points of a long-running
// analysis or simulation campaign so an interrupted run can resume without
// repeating finished work (DESIGN.md §10). A checkpoint is a single JSON
// file holding a schema version, a run fingerprint, and a map from point
// key to the point's JSON-encoded result. Every Put rewrites the file
// atomically (write-temp-then-rename in the same directory), so a crash or
// SIGKILL at any instant leaves either the previous or the new complete
// checkpoint on disk — never a torn one.
//
// The fingerprint binds a checkpoint to the exact campaign that wrote it:
// binary name, canonical parameter JSON, seed, and the build identity from
// the obs manifest machinery (VCS revision, dirty flag, Go version). A
// resumed run with any of those changed refuses the checkpoint instead of
// silently merging stale results; encoding/json round-trips float64 values
// exactly, so restored points reproduce the original output byte for byte.
package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/groupdetect/gbd/internal/obs"
)

// Version identifies the checkpoint schema; Decode rejects files written
// by any other version.
const Version = 1

// Sentinel errors for checkpoint validation failures.
var (
	// ErrCorrupt reports a file that is not a complete, well-formed
	// checkpoint (truncated, trailing garbage, wrong shape, bad version).
	ErrCorrupt = errors.New("checkpoint: corrupt or incompatible checkpoint file")
	// ErrFingerprint reports a checkpoint written by a different campaign
	// (parameters, seed, binary, or build changed).
	ErrFingerprint = errors.New("checkpoint: fingerprint mismatch (stale checkpoint)")
)

// Metric handles, resolved once at package init (DESIGN.md §9).
var (
	pointsSaved    = obs.Default.Counter("checkpoint.points.saved")
	pointsRestored = obs.Default.Counter("checkpoint.points.restored")
	resumes        = obs.Default.Counter("checkpoint.resumes")
)

// payload is the on-disk shape.
type payload struct {
	Version     int                        `json:"version"`
	Fingerprint string                     `json:"fingerprint"`
	Points      map[string]json.RawMessage `json:"points"`
}

// Fingerprint derives the identity string binding a checkpoint to one
// campaign: the binary name, the canonical JSON encoding of params, the
// seed, and the build identity recorded in run manifests. Any difference
// in those inputs yields a different fingerprint.
func Fingerprint(binary string, params any, seed int64) (string, error) {
	blob, err := json.Marshal(params)
	if err != nil {
		return "", fmt.Errorf("checkpoint: fingerprint params: %w", err)
	}
	return obs.Fingerprint(binary, string(blob), seed), nil
}

// Store is an open checkpoint: a key-value map of completed points backed
// by an atomically rewritten JSON file. All methods are safe for
// concurrent use — sweep workers Put from multiple goroutines.
type Store struct {
	mu          sync.Mutex
	path        string
	fingerprint string
	points      map[string]json.RawMessage
}

// Create opens a fresh checkpoint at path for the given fingerprint. Any
// existing file is ignored and overwritten on the first Put.
func Create(path, fingerprint string) (*Store, error) {
	if path == "" || fingerprint == "" {
		return nil, fmt.Errorf("checkpoint: path and fingerprint must be non-empty")
	}
	return &Store{
		path:        path,
		fingerprint: fingerprint,
		points:      make(map[string]json.RawMessage),
	}, nil
}

// Resume opens an existing checkpoint at path, validating the file and
// the fingerprint. A missing, corrupt, or stale checkpoint is an error —
// a resumed run must never silently recompute or merge.
//
// A crash between the temp-file write and the atomic rename (the torn-
// write window) leaves the previous complete checkpoint at path plus a
// stray temp file: Resume reads the previous checkpoint — the interrupted
// Put's point is simply absent and gets recomputed — and sweeps the dead
// temp files so they cannot accumulate across repeated crashes.
func Resume(path, fingerprint string) (*Store, error) {
	s, err := Create(path, fingerprint)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: resume: %w", err)
	}
	points, err := Decode(data, fingerprint)
	if err != nil {
		return nil, err
	}
	s.points = points
	if stale, err := filepath.Glob(path + ".tmp-*"); err == nil {
		for _, f := range stale {
			os.Remove(f)
		}
	}
	resumes.Inc()
	return s, nil
}

// Fingerprint returns the fingerprint the store was opened with.
func (s *Store) Fingerprint() string { return s.fingerprint }

// Len returns the number of completed points currently recorded.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Get unmarshals the recorded result for key into out and reports whether
// the key was present. A present-but-undecodable value is an error (the
// caller's type changed under the checkpoint).
func (s *Store) Get(key string, out any) (bool, error) {
	s.mu.Lock()
	raw, ok := s.points[key]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("checkpoint: point %q does not decode: %w", key, err)
	}
	pointsRestored.Inc()
	return true, nil
}

// Keys returns every recorded point key, in no particular order. The
// fabric work ledger uses it to find which points a resumed campaign
// still owes.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.points))
	for k := range s.points {
		keys = append(keys, k)
	}
	return keys
}

// PutBatch records several completed points and persists the checkpoint
// once, amortizing the atomic rewrite over the whole batch — the fabric
// ledger commits one shard of sweep rows per call this way. Either every
// point in the batch lands on disk or none does.
func (s *Store) PutBatch(points map[string]any) error {
	encoded := make(map[string]json.RawMessage, len(points))
	for k, v := range points {
		raw, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("checkpoint: encode point %q: %w", k, err)
		}
		encoded[k] = raw
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, raw := range encoded {
		s.points[k] = raw
	}
	if err := s.persistLocked(); err != nil {
		return err
	}
	pointsSaved.Add(uint64(len(encoded)))
	return nil
}

// Put records the completed point under key and persists the whole
// checkpoint atomically before returning, so a kill at any later instant
// cannot lose it.
func (s *Store) Put(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encode point %q: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.points[key] = raw
	if err := s.persistLocked(); err != nil {
		return err
	}
	pointsSaved.Inc()
	return nil
}

// Flush rewrites the checkpoint file from the in-memory state. Put already
// persists on every call; Flush exists for shutdown paths that want one
// final guaranteed write.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistLocked()
}

// persistLocked writes the checkpoint via a temp file in the same
// directory followed by an atomic rename. Callers hold s.mu.
func (s *Store) persistLocked() error {
	buf, err := Encode(s.fingerprint, s.points)
	if err != nil {
		return err
	}
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(s.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	_, werr := tmp.Write(buf)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: write: %w", werr)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// Encode serializes a checkpoint payload.
func Encode(fingerprint string, points map[string]json.RawMessage) ([]byte, error) {
	if points == nil {
		points = map[string]json.RawMessage{}
	}
	buf, err := json.MarshalIndent(payload{
		Version:     Version,
		Fingerprint: fingerprint,
		Points:      points,
	}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	return append(buf, '\n'), nil
}

// Decode parses and validates checkpoint bytes. It rejects anything that
// is not exactly one well-formed checkpoint object — truncated files,
// trailing garbage, unknown fields, wrong schema versions — and, when
// wantFingerprint is non-empty, any fingerprint mismatch. It never
// returns a partially decoded point set.
func Decode(data []byte, wantFingerprint string) (map[string]json.RawMessage, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p payload
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	// A second token after the object means trailing garbage — likely a
	// torn concatenation, which must not pass as a valid checkpoint.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after checkpoint object", ErrCorrupt)
	}
	if p.Version != Version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, p.Version, Version)
	}
	if p.Fingerprint == "" {
		return nil, fmt.Errorf("%w: missing fingerprint", ErrCorrupt)
	}
	if wantFingerprint != "" && p.Fingerprint != wantFingerprint {
		return nil, fmt.Errorf("%w: checkpoint %s vs run %s", ErrFingerprint, short(p.Fingerprint), short(wantFingerprint))
	}
	if p.Points == nil {
		p.Points = map[string]json.RawMessage{}
	}
	return p.Points, nil
}

// short abbreviates a fingerprint for error messages.
func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}
