package faults

import (
	"math"
	"testing"

	"github.com/groupdetect/gbd/internal/field"
	"github.com/groupdetect/gbd/internal/geom"
)

func deployment(t *testing.T, n int, bounds geom.Rect, seed int64) []geom.Point {
	t.Helper()
	pts, err := field.Uniform(n, bounds, field.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func TestNoneKeepsEveryoneAlive(t *testing.T) {
	bounds := geom.Square(1000)
	nodes := deployment(t, 50, bounds, 1)
	masks, err := None{}.Masks(nodes, bounds, 5, field.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(masks) != 5 {
		t.Fatalf("periods = %d", len(masks))
	}
	for t2, m := range masks {
		if AliveFraction(m) != 1 {
			t.Errorf("period %d alive fraction %v", t2+1, AliveFraction(m))
		}
	}
}

func TestBernoulliDeadFraction(t *testing.T) {
	bounds := geom.Square(1000)
	nodes := deployment(t, 5000, bounds, 3)
	masks, err := Bernoulli{DeadFrac: 0.3}.Masks(nodes, bounds, 4, field.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	got := AliveFraction(masks[0])
	if math.Abs(got-0.7) > 0.03 {
		t.Errorf("alive fraction %v, want ~0.7", got)
	}
	// Death is decided once: the mask is constant across periods.
	for p := 1; p < len(masks); p++ {
		for i := range masks[p] {
			if masks[p][i] != masks[0][i] {
				t.Fatalf("period %d mask differs from period 1", p+1)
			}
		}
	}
}

func TestBernoulliValidation(t *testing.T) {
	bounds := geom.Square(100)
	nodes := deployment(t, 3, bounds, 5)
	if _, err := (Bernoulli{DeadFrac: 1.5}).Masks(nodes, bounds, 3, field.NewRand(1)); err == nil {
		t.Error("dead fraction > 1 should fail")
	}
	if _, err := (Bernoulli{DeadFrac: 0.5}).Masks(nodes, bounds, 0, field.NewRand(1)); err == nil {
		t.Error("zero periods should fail")
	}
}

func TestLifetimeMonotoneAndGeometric(t *testing.T) {
	bounds := geom.Square(1000)
	nodes := deployment(t, 4000, bounds, 6)
	const hazard = 0.1
	masks, err := Lifetime{Hazard: hazard}.Masks(nodes, bounds, 10, field.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for p, m := range masks {
		frac := AliveFraction(m)
		if frac > prev {
			t.Fatalf("period %d alive fraction %v rose above %v", p+1, frac, prev)
		}
		want := math.Pow(1-hazard, float64(p+1))
		if math.Abs(frac-want) > 0.03 {
			t.Errorf("period %d alive fraction %v, want ~%v", p+1, frac, want)
		}
		prev = frac
	}
	// Once dead, stays dead.
	for p := 1; p < len(masks); p++ {
		for i := range masks[p] {
			if masks[p][i] && !masks[p-1][i] {
				t.Fatalf("node %d resurrected at period %d", i, p+1)
			}
		}
	}
}

func TestBlobKillsDiskFromEventPeriod(t *testing.T) {
	bounds := geom.Square(1000)
	// A 3x3 grid of known positions.
	var nodes []geom.Point
	for _, x := range []float64{100, 500, 900} {
		for _, y := range []float64{100, 500, 900} {
			nodes = append(nodes, geom.Point{X: x, Y: y})
		}
	}
	center := geom.Point{X: 500, Y: 500}
	masks, err := Blob{Radius: 450, At: 3, Center: &center}.Masks(nodes, bounds, 5, field.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		inBlast := nodes[i].Dist(center) <= 450
		for p := range masks {
			wantAlive := !(inBlast && p >= 2) // periods 3..5 post-event
			if masks[p][i] != wantAlive {
				t.Errorf("node %d period %d alive = %v, want %v", i, p+1, masks[p][i], wantAlive)
			}
		}
	}
}

func TestBlobRandomCenterDeterministicPerSeed(t *testing.T) {
	bounds := geom.Square(1000)
	nodes := deployment(t, 200, bounds, 9)
	a, err := Blob{Radius: 300}.Masks(nodes, bounds, 4, field.NewRand(10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Blob{Radius: 300}.Masks(nodes, bounds, 4, field.NewRand(10))
	if err != nil {
		t.Fatal(err)
	}
	for p := range a {
		for i := range a[p] {
			if a[p][i] != b[p][i] {
				t.Fatal("same seed produced different masks")
			}
		}
	}
}

func TestComposeIntersects(t *testing.T) {
	bounds := geom.Square(1000)
	nodes := deployment(t, 2000, bounds, 11)
	model := Compose{Bernoulli{DeadFrac: 0.2}, Bernoulli{DeadFrac: 0.2}}
	masks, err := model.Masks(nodes, bounds, 3, field.NewRand(12))
	if err != nil {
		t.Fatal(err)
	}
	got := AliveFraction(masks[0])
	if math.Abs(got-0.64) > 0.04 {
		t.Errorf("composed alive fraction %v, want ~0.64", got)
	}
	if _, err := (Compose{}).Masks(nodes, bounds, 3, field.NewRand(1)); err == nil {
		t.Error("empty composition should fail")
	}
}

func TestAliveFractionHelpers(t *testing.T) {
	if AliveFraction(nil) != 1 {
		t.Error("empty mask should count as fully alive")
	}
	if got := AliveFraction([]bool{true, false, true, false}); got != 0.5 {
		t.Errorf("alive fraction %v, want 0.5", got)
	}
	masks := [][]bool{{true, true}, {true, false}}
	if got := MeanAliveFraction(masks); got != 0.75 {
		t.Errorf("mean alive fraction %v, want 0.75", got)
	}
}
