// Package faults injects node failures into a deployment. The paper assumes
// every deployed sensor stays alive for the whole mission; real sparse
// deployments lose nodes to battery exhaustion, hardware death and localized
// events (jamming, flooding). Each model here turns a deployment into a
// deterministic, seedable per-period alive mask that the simulator and the
// network layer consume: a dead sensor neither senses nor relays.
//
// All models are permanent-death models: once a node dies it stays dead, so
// masks are monotone non-increasing over time.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/groupdetect/gbd/internal/geom"
)

// ErrModel reports an invalid failure model.
var ErrModel = errors.New("faults: invalid failure model")

// Model produces alive masks for a deployment.
type Model interface {
	// Masks returns alive[t][i], whether node i is alive during sensing
	// period t+1, for t = 0..periods-1. bounds is the deployment field
	// (used by spatially correlated models); rng supplies the randomness,
	// so a model is deterministic per (deployment, rng state).
	Masks(nodes []geom.Point, bounds geom.Rect, periods int, rng *rand.Rand) ([][]bool, error)
}

func checkPeriods(periods int) error {
	if periods < 1 {
		return fmt.Errorf("periods = %d must be >= 1: %w", periods, ErrModel)
	}
	return nil
}

func allAlive(nodes, periods int) [][]bool {
	masks := make([][]bool, periods)
	for t := range masks {
		masks[t] = make([]bool, nodes)
		for i := range masks[t] {
			masks[t][i] = true
		}
	}
	return masks
}

// None is the paper's assumption: every node alive for the whole mission.
type None struct{}

// Masks implements Model.
func (None) Masks(nodes []geom.Point, _ geom.Rect, periods int, _ *rand.Rand) ([][]bool, error) {
	if err := checkPeriods(periods); err != nil {
		return nil, err
	}
	return allAlive(len(nodes), periods), nil
}

// Bernoulli kills each node independently with probability DeadFrac before
// the mission starts — the classic "a fraction f of the deployment never
// reports" model. Its analytical mirror is the effective density
// n' = n*(1-f) (equivalently, thinning Pd by 1-f).
type Bernoulli struct {
	// DeadFrac is the independent per-node death probability in [0, 1].
	DeadFrac float64
}

// Masks implements Model.
func (b Bernoulli) Masks(nodes []geom.Point, _ geom.Rect, periods int, rng *rand.Rand) ([][]bool, error) {
	if b.DeadFrac < 0 || b.DeadFrac > 1 || math.IsNaN(b.DeadFrac) {
		return nil, fmt.Errorf("dead fraction %v must be in [0, 1]: %w", b.DeadFrac, ErrModel)
	}
	if err := checkPeriods(periods); err != nil {
		return nil, err
	}
	alive := make([]bool, len(nodes))
	for i := range alive {
		alive[i] = rng.Float64() >= b.DeadFrac
	}
	masks := make([][]bool, periods)
	for t := range masks {
		masks[t] = append([]bool(nil), alive...)
	}
	return masks, nil
}

// Lifetime is a per-period battery/hardware hazard: each node alive at the
// start of a period dies during it with probability Hazard, independently.
// A node alive in period t survives to period t+k with probability
// (1-Hazard)^k, the geometric lifetime model.
type Lifetime struct {
	// Hazard is the per-period death probability in [0, 1].
	Hazard float64
	// InitialDeadFrac optionally kills a fraction before the mission, so a
	// campaign can start from an already-degraded deployment.
	InitialDeadFrac float64
}

// Masks implements Model.
func (l Lifetime) Masks(nodes []geom.Point, _ geom.Rect, periods int, rng *rand.Rand) ([][]bool, error) {
	if l.Hazard < 0 || l.Hazard > 1 || math.IsNaN(l.Hazard) {
		return nil, fmt.Errorf("hazard %v must be in [0, 1]: %w", l.Hazard, ErrModel)
	}
	if l.InitialDeadFrac < 0 || l.InitialDeadFrac > 1 || math.IsNaN(l.InitialDeadFrac) {
		return nil, fmt.Errorf("initial dead fraction %v must be in [0, 1]: %w", l.InitialDeadFrac, ErrModel)
	}
	if err := checkPeriods(periods); err != nil {
		return nil, err
	}
	alive := make([]bool, len(nodes))
	for i := range alive {
		alive[i] = rng.Float64() >= l.InitialDeadFrac
	}
	masks := make([][]bool, periods)
	for t := range masks {
		for i := range alive {
			if alive[i] && rng.Float64() < l.Hazard {
				alive[i] = false
			}
		}
		masks[t] = append([]bool(nil), alive...)
	}
	return masks, nil
}

// Blob is a spatially correlated failure: at period At, every node within
// Radius of a disaster center is destroyed permanently (jamming, flooding,
// shelling of a region). The center is drawn uniformly from bounds unless
// Center is set.
type Blob struct {
	// Radius is the destruction radius in meters.
	Radius float64
	// At is the 1-based period the event strikes; 0 means period 1.
	At int
	// Center, when non-nil, fixes the event location instead of drawing it
	// uniformly from the field.
	Center *geom.Point
}

// Masks implements Model.
func (b Blob) Masks(nodes []geom.Point, bounds geom.Rect, periods int, rng *rand.Rand) ([][]bool, error) {
	if !(b.Radius > 0) || math.IsInf(b.Radius, 0) {
		return nil, fmt.Errorf("blob radius %v must be positive and finite: %w", b.Radius, ErrModel)
	}
	if b.At < 0 {
		return nil, fmt.Errorf("blob period %d must be >= 0: %w", b.At, ErrModel)
	}
	if err := checkPeriods(periods); err != nil {
		return nil, err
	}
	at := b.At
	if at == 0 {
		at = 1
	}
	center := geom.Point{
		X: bounds.MinX + rng.Float64()*(bounds.MaxX-bounds.MinX),
		Y: bounds.MinY + rng.Float64()*(bounds.MaxY-bounds.MinY),
	}
	if b.Center != nil {
		center = *b.Center
	}
	masks := allAlive(len(nodes), periods)
	r2 := b.Radius * b.Radius
	for t := at - 1; t < periods; t++ {
		for i, p := range nodes {
			if p.Dist2(center) <= r2 {
				masks[t][i] = false
			}
		}
	}
	return masks, nil
}

// Compose overlays several failure models: a node is alive only when alive
// under every component. Use it to combine, say, a battery hazard with a
// mid-mission jamming blob.
type Compose []Model

// Masks implements Model.
func (c Compose) Masks(nodes []geom.Point, bounds geom.Rect, periods int, rng *rand.Rand) ([][]bool, error) {
	if len(c) == 0 {
		return nil, fmt.Errorf("empty composition: %w", ErrModel)
	}
	out, err := c[0].Masks(nodes, bounds, periods, rng)
	if err != nil {
		return nil, err
	}
	for _, m := range c[1:] {
		next, err := m.Masks(nodes, bounds, periods, rng)
		if err != nil {
			return nil, err
		}
		for t := range out {
			for i := range out[t] {
				out[t][i] = out[t][i] && next[t][i]
			}
		}
	}
	return out, nil
}

// AliveFraction returns the fraction of true entries in a mask (1 for an
// empty mask, matching a zero-sensor deployment having nothing to lose).
func AliveFraction(mask []bool) float64 {
	if len(mask) == 0 {
		return 1
	}
	alive := 0
	for _, a := range mask {
		if a {
			alive++
		}
	}
	return float64(alive) / float64(len(mask))
}

// MeanAliveFraction averages AliveFraction over all periods of a mask set.
func MeanAliveFraction(masks [][]bool) float64 {
	if len(masks) == 0 {
		return 1
	}
	sum := 0.0
	for _, m := range masks {
		sum += AliveFraction(m)
	}
	return sum / float64(len(masks))
}
