package system

import (
	"math"
	"testing"
	"time"

	"github.com/groupdetect/gbd/internal/detect"
	"github.com/groupdetect/gbd/internal/sim"
)

func baseConfig() Config {
	return Config{
		Params:    detect.Defaults(),
		CommRange: 6000,
		PerHop:    10 * time.Second,
		Trials:    400,
		Seed:      21,
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad params", func(c *Config) { c.Params.N = -1 }},
		{"zero comm range", func(c *Config) { c.CommRange = 0 }},
		{"zero per-hop", func(c *Config) { c.PerHop = 0 }},
		{"bad false alarm", func(c *Config) { c.FalseAlarmP = 2 }},
		{"zero trials", func(c *Config) { c.Trials = 0 }},
	}
	for _, tc := range cases {
		cfg := baseConfig()
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestEndToEndMatchesSensingWhenCommIsGood: with the ONR communication
// parameters (6 km range, 10 s/hop) the network delivers essentially every
// report within its generating period, so the end-to-end detection
// probability must match the sensing-only simulation and the analysis —
// the paper's Section-4 argument for ignoring the communication stack.
func TestEndToEndMatchesSensingWhenCommIsGood(t *testing.T) {
	cfg := baseConfig()
	cfg.Trials = 2000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredFrac < 0.97 {
		t.Errorf("delivered fraction %v, expected near-total delivery at N=120", res.DeliveredFrac)
	}
	if res.MeanDeliveryPeriods > 0.05 {
		t.Errorf("mean delivery delay %v periods, expected ~0", res.MeanDeliveryPeriods)
	}
	ana, err := detect.MSApproach(cfg.Params, detect.MSOptions{Gh: 4, G: 4})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(res.DetectionProb - ana.DetectionProb); diff > 0.04 {
		t.Errorf("end-to-end %v vs analysis %v (diff %v)", res.DetectionProb, ana.DetectionProb, diff)
	}
}

// TestEndToEndDegradesWithPoorComm: shrinking the communication range
// fragments the network; reports from disconnected sensors never arrive
// and detection drops below the sensing-only level.
func TestEndToEndDegradesWithPoorComm(t *testing.T) {
	good := baseConfig()
	good.Trials = 800
	gRes, err := Run(good)
	if err != nil {
		t.Fatal(err)
	}
	poor := good
	poor.CommRange = 2500 // badly fragmented at N=120 in 32 km
	pRes, err := Run(poor)
	if err != nil {
		t.Fatal(err)
	}
	if pRes.DeliveredFrac >= gRes.DeliveredFrac {
		t.Errorf("poor comm should drop reports: %v vs %v", pRes.DeliveredFrac, gRes.DeliveredFrac)
	}
	if pRes.DetectionProb >= gRes.DetectionProb {
		t.Errorf("poor comm should cost detection: %v vs %v", pRes.DetectionProb, gRes.DetectionProb)
	}
}

// TestEndToEndSlowHopsDelayDecisions: very slow per-hop forwarding pushes
// arrivals into later periods, delaying (and near the window edge,
// losing) decisions.
func TestEndToEndSlowHopsDelayDecisions(t *testing.T) {
	fast := baseConfig()
	fast.Trials = 800
	fRes, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	slow := fast
	slow.PerHop = 90 * time.Second // 1.5 periods per hop
	sRes, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if sRes.MeanDeliveryPeriods <= fRes.MeanDeliveryPeriods {
		t.Errorf("slow hops should delay delivery: %v vs %v",
			sRes.MeanDeliveryPeriods, fRes.MeanDeliveryPeriods)
	}
	if fRes.Detections > 0 && sRes.Detections > 0 {
		if sRes.DecisionLatency.Mean() <= fRes.DecisionLatency.Mean() {
			t.Errorf("slow hops should delay decisions: %v vs %v",
				sRes.DecisionLatency.Mean(), fRes.DecisionLatency.Mean())
		}
	}
	if sRes.DetectionProb > fRes.DetectionProb+0.02 {
		t.Errorf("slow comm cannot improve detection: %v vs %v", sRes.DetectionProb, fRes.DetectionProb)
	}
}

// TestGatedFiltersScatteredFalseAlarms: with a high false alarm rate, the
// ungated base trips on noise while the kinematic gate holds the line
// without giving up true detections.
func TestGatedFiltersScatteredFalseAlarms(t *testing.T) {
	noisy := baseConfig()
	noisy.Trials = 300
	noisy.FalseAlarmP = 3e-3
	// Remove the target's contribution by making the window almost
	// impossible to fill legitimately... instead compare gated vs ungated
	// with the target present: ungated >= gated always, and the gated run
	// must stay close to the noise-free detection probability.
	ungated, err := Run(noisy)
	if err != nil {
		t.Fatal(err)
	}
	gatedCfg := noisy
	gatedCfg.Gated = true
	gated, err := Run(gatedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if gated.DetectionProb > ungated.DetectionProb+1e-9 {
		t.Errorf("gating cannot add detections: %v vs %v", gated.DetectionProb, ungated.DetectionProb)
	}
	clean := baseConfig()
	clean.Trials = 300
	base, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	// The ungated noisy run overcounts (false alarms inflate it well above
	// the clean probability); the gated run should stay near it.
	if ungated.DetectionProb < base.DetectionProb {
		t.Errorf("false alarms should inflate ungated detection: %v vs %v",
			ungated.DetectionProb, base.DetectionProb)
	}
	if math.Abs(gated.DetectionProb-base.DetectionProb) > 0.12 {
		t.Errorf("gated run %v strayed far from clean baseline %v",
			gated.DetectionProb, base.DetectionProb)
	}
}

func TestDecisionLatencyConsistentWithSensingLatency(t *testing.T) {
	cfg := baseConfig()
	cfg.Trials = 1000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Run(sim.Config{Params: cfg.Params, Trials: 1000, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == 0 || simRes.Detections == 0 {
		t.Skip("no detections to compare")
	}
	// With near-instant delivery the base decides within about a period of
	// the sensing-level K-th report.
	if d := res.DecisionLatency.Mean() - simRes.Latency.Mean(); d < -1.5 || d > 1.5 {
		t.Errorf("decision latency %v vs sensing latency %v", res.DecisionLatency.Mean(), simRes.Latency.Mean())
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	cfg := baseConfig()
	cfg.Trials = 200
	cfg.Workers = 1
	one, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	eight, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if one.Detections != eight.Detections {
		t.Errorf("worker count changed detections: %d vs %d", one.Detections, eight.Detections)
	}
	if one.DeliveredFrac != eight.DeliveredFrac {
		t.Errorf("delivered fractions differ: %v vs %v", one.DeliveredFrac, eight.DeliveredFrac)
	}
	if _, err := Run(Config{Params: cfg.Params, CommRange: 6000, PerHop: cfg.PerHop, Trials: 10, Workers: -1}); err == nil {
		t.Error("negative workers should fail")
	}
}
