// Package system is the end-to-end integration of every substrate: sensors
// detect a moving target (and false-alarm), reports travel over the
// multi-hop unit-disk network to a base station with per-hop latency, and
// the base runs the windowed, optionally track-gated group detection rule
// on the reports that actually arrive. The paper analyzes the sensing layer
// in isolation and assumes delivery within one period (Section 4); this
// package simulates the deployed-system view and quantifies when that
// assumption holds — and what detection costs when it does not.
package system

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/groupdetect/gbd/internal/detect"
	"github.com/groupdetect/gbd/internal/field"
	"github.com/groupdetect/gbd/internal/geom"
	"github.com/groupdetect/gbd/internal/netsim"
	"github.com/groupdetect/gbd/internal/sensing"
	"github.com/groupdetect/gbd/internal/stats"
	"github.com/groupdetect/gbd/internal/target"
	"github.com/groupdetect/gbd/internal/track"
)

// ErrConfig reports an invalid system configuration.
var ErrConfig = errors.New("system: invalid configuration")

// ErrNoTrack reports failure to place a confined track.
var ErrNoTrack = errors.New("system: could not sample a track inside the field")

// Config describes the full deployed system.
type Config struct {
	// Params is the sensing scenario (field, sensors, target, K-of-M rule).
	Params detect.Params
	// CommRange is the radio range for the unit-disk communication graph.
	CommRange float64
	// PerHop is the per-hop forwarding latency.
	PerHop time.Duration
	// FalseAlarmP is the per-sensor per-period false alarm probability.
	FalseAlarmP float64
	// Gated applies the kinematic track-consistency filter at the base;
	// ungated counts raw reports per window (the rule the analysis models).
	Gated bool
	// Model generates target tracks; nil means straight-line at V.
	Model target.Model
	// Trials and Seed control the campaign.
	Trials int
	Seed   int64
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (c Config) validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	switch {
	case c.CommRange <= 0:
		return fmt.Errorf("comm range %v: %w", c.CommRange, ErrConfig)
	case c.PerHop <= 0:
		return fmt.Errorf("per-hop latency %v: %w", c.PerHop, ErrConfig)
	case c.FalseAlarmP < 0 || c.FalseAlarmP > 1:
		return fmt.Errorf("false alarm probability %v: %w", c.FalseAlarmP, ErrConfig)
	case c.Trials < 1:
		return fmt.Errorf("trials %d: %w", c.Trials, ErrConfig)
	case c.Workers < 0:
		return fmt.Errorf("workers %d: %w", c.Workers, ErrConfig)
	}
	return nil
}

// Result aggregates an end-to-end campaign.
type Result struct {
	// Trials and Detections count trials and base-station detections.
	Trials, Detections int
	// DetectionProb is the end-to-end detection probability; CI its 95%
	// Wilson interval.
	DetectionProb float64
	CI            stats.Interval
	// DeliveredFrac is the fraction of generated reports that reached the
	// base within the observation window.
	DeliveredFrac float64
	// MeanDeliveryPeriods is the average delivery delay in whole sensing
	// periods (0 means within the generating period — the paper's
	// assumption).
	MeanDeliveryPeriods float64
	// DecisionLatency is the distribution, over detected trials, of the
	// period at which the base declared the detection.
	DecisionLatency stats.Histogram
}

// cancelCheckMask amortizes cancellation polling to one check every 32
// trials, mirroring the sim package's hot-loop policy.
const cancelCheckMask = 31

// Run simulates the full pipeline.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run under a context: cancellation stops every worker within a
// bounded number of trials and returns ctx.Err(). A completing run is
// bit-identical to Run (the context never touches trial mechanics).
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := cfg.Params
	model := cfg.Model
	if model == nil {
		model = target.Straight{Step: p.Vt()}
	}
	bounds := geom.Square(p.FieldSide)
	disk, err := sensing.NewDisk(p.Rs, p.Pd)
	if err != nil {
		return nil, err
	}
	fa, err := sensing.NewFalseAlarm(cfg.FalseAlarmP)
	if err != nil {
		return nil, err
	}
	gate, err := track.NewGate(p.V, p.T, p.Rs)
	if err != nil {
		return nil, err
	}
	center := geom.Point{X: p.FieldSide / 2, Y: p.FieldSide / 2}

	res := &Result{Trials: cfg.Trials}
	var generated, delivered, delaySum int

	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	type partial struct {
		detections                   int
		generated, delivered, delays int
		latency                      stats.Histogram
		err                          error
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := &parts[w]
			done := ctx.Done()
			polls := 0
			for trial := w; trial < cfg.Trials; trial += workers {
				if done != nil {
					if polls++; polls&cancelCheckMask == 0 {
						select {
						case <-done:
							part.err = ctx.Err()
							return
						default:
						}
					}
				}
				decided, gen, del, delay, err := runTrial(cfg, p, model, disk, fa, gate, center, bounds, trial)
				if err != nil {
					part.err = err
					return
				}
				part.generated += gen
				part.delivered += del
				part.delays += delay
				if decided > 0 {
					part.detections++
					if err := part.latency.Add(decided); err != nil {
						part.err = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for i := range parts {
		if parts[i].err != nil {
			return nil, parts[i].err
		}
		res.Detections += parts[i].detections
		generated += parts[i].generated
		delivered += parts[i].delivered
		delaySum += parts[i].delays
		res.DecisionLatency.Merge(&parts[i].latency)
	}

	res.DetectionProb = float64(res.Detections) / float64(res.Trials)
	ci, err := stats.WilsonInterval(res.Detections, res.Trials, 1.96)
	if err != nil {
		return nil, err
	}
	res.CI = ci
	if generated > 0 {
		res.DeliveredFrac = float64(delivered) / float64(generated)
	}
	if delivered > 0 {
		res.MeanDeliveryPeriods = float64(delaySum) / float64(delivered)
	}
	return res, nil
}

// runTrial executes one end-to-end trial and returns the decision period
// (0 if undetected) plus report accounting.
func runTrial(cfg Config, p detect.Params, model target.Model, disk sensing.Disk,
	fa sensing.FalseAlarm, gate track.Gate, center geom.Point, bounds geom.Rect,
	trial int) (decided, generated, delivered, delaySum int, err error) {
	rng := field.NewRand(field.DeriveSeed(cfg.Seed, int64(trial)))
	sensors, err := field.Uniform(p.N, bounds, rng)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	idx, err := field.NewIndex(sensors, bounds, indexCell(p))
	if err != nil {
		return 0, 0, 0, 0, err
	}
	net, err := netsim.New(sensors, cfg.CommRange, bounds)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	base := 0
	for i, s := range sensors {
		if s.Dist(center) < sensors[base].Dist(center) {
			base = i
		}
	}
	hops, err := net.HopsFrom(base)
	if err != nil {
		return 0, 0, 0, 0, err
	}

	tr, err := confinedTrack(model, p.M, bounds, rng)
	if err != nil {
		return 0, 0, 0, 0, err
	}

	// arrivals[period] lists reports the base receives during that
	// period.
	arrivals := make([][]track.Report, p.M+1)
	deliver := func(r track.Report, hopCount int) {
		generated++
		if hopCount < 0 {
			return // reporter disconnected from the base
		}
		// Whole-period delay: a report forwarded within its own period
		// (hops*PerHop <= T) arrives with zero period delay, matching
		// the paper's assumption when it holds.
		delay := int(math.Ceil(float64(time.Duration(hopCount)*cfg.PerHop) / float64(p.T)))
		if delay > 0 {
			delay--
		}
		at := r.Period + delay
		if at > p.M {
			return // too late for the decision window
		}
		arrivals[at] = append(arrivals[at], r)
		delivered++
		delaySum += at - r.Period
	}

	buf := make([]int, 0, 16)
	for period := 1; period <= p.M; period++ {
		seg := geom.Segment{A: tr[period-1], B: tr[period]}
		buf = idx.QuerySegment(seg, p.Rs, buf[:0])
		for _, id := range buf {
			if disk.Detects(sensors[id], seg, rng) {
				deliver(track.Report{Sensor: id, Pos: sensors[id], Period: period}, hops[id])
			}
		}
		if fa.P > 0 {
			for s := 0; s < p.N; s++ {
				if fa.Fires(rng) {
					deliver(track.Report{Sensor: s, Pos: sensors[s], Period: period}, hops[s])
				}
			}
		}
	}

	// The base evaluates the rule at the end of each period on
	// everything that has arrived so far.
	var inbox []track.Report
	for period := 1; period <= p.M && decided == 0; period++ {
		inbox = append(inbox, arrivals[period]...)
		if len(inbox) < p.K {
			continue
		}
		dec, err := track.Decide(inbox, p.K, p.M, gate, cfg.Gated)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if dec.Detected {
			decided = period
		}
	}
	return decided, generated, delivered, delaySum, nil
}

// confinedTrack samples entry points and headings until the whole track
// stays inside the field, matching the analysis assumption.
func confinedTrack(model target.Model, m int, bounds geom.Rect, rng *rand.Rand) ([]geom.Point, error) {
	const attempts = 10000
	for a := 0; a < attempts; a++ {
		start := geom.Point{
			X: bounds.MinX + rng.Float64()*(bounds.MaxX-bounds.MinX),
			Y: bounds.MinY + rng.Float64()*(bounds.MaxY-bounds.MinY),
		}
		theta := rng.Float64() * 2 * math.Pi
		tr, err := model.Track(start, theta, m, rng)
		if err != nil {
			return nil, err
		}
		if target.InBounds(tr, bounds) {
			return tr, nil
		}
	}
	return nil, ErrNoTrack
}

func indexCell(p detect.Params) float64 {
	cell := p.Rs
	if minCell := p.FieldSide / 256; cell < minCell {
		cell = minCell
	}
	return cell
}
