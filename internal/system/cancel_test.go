package system

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func TestRunCtxCancellation(t *testing.T) {
	cfg := baseConfig()
	cfg.Trials = 100_000
	cfg.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunCtx err = %v, want context.Canceled", err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	go cancel()
	res, err := RunCtx(ctx, cfg)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx err = %v, want nil or context.Canceled", err)
	}
	if err != nil && res != nil {
		t.Fatal("cancelled RunCtx must not return a partial Result")
	}
}

func TestRunCtxMatchesRun(t *testing.T) {
	cfg := baseConfig()
	cfg.Trials = 100
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := RunCtx(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RunCtx result differs from Run:\n got %+v\nwant %+v", got, want)
	}
}
