package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinomialPMFKnown(t *testing.T) {
	tests := []struct {
		n, k int
		p    float64
		want float64
	}{
		{1, 0, 0.5, 0.5},
		{1, 1, 0.5, 0.5},
		{2, 1, 0.5, 0.5},
		{4, 2, 0.5, 0.375},
		{10, 0, 0.1, math.Pow(0.9, 10)},
		{10, 10, 0.1, math.Pow(0.1, 10)},
		{3, 1, 0.25, 3 * 0.25 * 0.75 * 0.75},
	}
	for _, tt := range tests {
		got := BinomialPMF(tt.n, tt.k, tt.p)
		if !AlmostEqual(got, tt.want, 1e-14, 1e-12) {
			t.Errorf("BinomialPMF(%d,%d,%v) = %v, want %v", tt.n, tt.k, tt.p, got, tt.want)
		}
	}
}

func TestBinomialPMFBoundaryP(t *testing.T) {
	if got := BinomialPMF(5, 0, 0); got != 1 {
		t.Errorf("p=0, k=0: got %v, want 1", got)
	}
	if got := BinomialPMF(5, 1, 0); got != 0 {
		t.Errorf("p=0, k=1: got %v, want 0", got)
	}
	if got := BinomialPMF(5, 5, 1); got != 1 {
		t.Errorf("p=1, k=n: got %v, want 1", got)
	}
	if got := BinomialPMF(5, 4, 1); got != 0 {
		t.Errorf("p=1, k<n: got %v, want 0", got)
	}
	if got := BinomialPMF(5, 6, 0.5); got != 0 {
		t.Errorf("k>n: got %v, want 0", got)
	}
	if got := BinomialPMF(-1, 0, 0.5); got != 0 {
		t.Errorf("n<0: got %v, want 0", got)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 50, 400} {
		for _, p := range []float64{0.001, 0.1, 0.5, 0.9, 0.999} {
			var sum Kahan
			for k := 0; k <= n; k++ {
				sum.Add(BinomialPMF(n, k, p))
			}
			if !AlmostEqual(sum.Sum(), 1, 1e-10, 1e-10) {
				t.Errorf("n=%d p=%v: PMF sums to %v", n, p, sum.Sum())
			}
		}
	}
}

func TestBinomialCDFTailComplement(t *testing.T) {
	f := func(n8 uint8, k8 uint8, pRaw float64) bool {
		n := 1 + int(n8%200)
		k := int(k8) % (n + 2)
		p := math.Abs(math.Mod(pRaw, 1))
		cdf := BinomialCDF(n, k-1, p)
		tail := BinomialTail(n, k, p)
		return AlmostEqual(cdf+tail, 1, 1e-9, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBinomialCDFEdges(t *testing.T) {
	if got := BinomialCDF(10, -1, 0.5); got != 0 {
		t.Errorf("CDF(k=-1) = %v, want 0", got)
	}
	if got := BinomialCDF(10, 10, 0.5); got != 1 {
		t.Errorf("CDF(k=n) = %v, want 1", got)
	}
	if got := BinomialTail(10, 0, 0.5); got != 1 {
		t.Errorf("Tail(k=0) = %v, want 1", got)
	}
	if got := BinomialTail(10, 11, 0.5); got != 0 {
		t.Errorf("Tail(k>n) = %v, want 0", got)
	}
}

func TestBinomialTailMonotoneInK(t *testing.T) {
	n, p := 100, 0.3
	prev := 1.0
	for k := 0; k <= n+1; k++ {
		cur := BinomialTail(n, k, p)
		if cur > prev+1e-12 {
			t.Fatalf("tail increased at k=%d: %v > %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestBinomialMoments(t *testing.T) {
	if got := BinomialMean(40, 0.25); got != 10 {
		t.Errorf("mean = %v, want 10", got)
	}
	if got := BinomialVariance(40, 0.25); !AlmostEqual(got, 7.5, 1e-12, 1e-12) {
		t.Errorf("variance = %v, want 7.5", got)
	}
}

func TestBinomialQuantile(t *testing.T) {
	// Median of Binomial(10, 0.5) is 5.
	k, err := BinomialQuantile(10, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if k != 5 {
		t.Errorf("median = %d, want 5", k)
	}
	// q=1 returns n at most.
	k, err = BinomialQuantile(10, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k != 10 {
		t.Errorf("q=1 quantile = %d, want 10", k)
	}
	if _, err := BinomialQuantile(10, 0.5, 0); err == nil {
		t.Error("q=0 should error")
	}
	if _, err := BinomialQuantile(10, 0.5, 1.5); err == nil {
		t.Error("q>1 should error")
	}
}

func TestBinomialQuantileInvertsCDF(t *testing.T) {
	n, p := 60, 0.2
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.9999} {
		k, err := BinomialQuantile(n, p, q)
		if err != nil {
			t.Fatal(err)
		}
		if BinomialCDF(n, k, p) < q-1e-12 {
			t.Errorf("CDF(%d) = %v < q = %v", k, BinomialCDF(n, k, p), q)
		}
		if k > 0 && BinomialCDF(n, k-1, p) >= q {
			t.Errorf("quantile %d not minimal for q=%v", k, q)
		}
	}
}

func TestKahanBeatsNaiveSum(t *testing.T) {
	// Summing 1 followed by many tiny values: naive summation drops them.
	var k Kahan
	k.Add(1)
	const tiny = 1e-16
	const reps = 1_000_000
	for i := 0; i < reps; i++ {
		k.Add(tiny)
	}
	want := 1 + tiny*reps
	if !AlmostEqual(k.Sum(), want, 1e-12, 1e-12) {
		t.Errorf("Kahan sum = %.17g, want %.17g", k.Sum(), want)
	}
}

func TestKahanReset(t *testing.T) {
	var k Kahan
	k.Add(5)
	k.Reset()
	if k.Sum() != 0 {
		t.Errorf("after Reset sum = %v, want 0", k.Sum())
	}
}

func TestSumSlice(t *testing.T) {
	if got := SumSlice([]float64{1, 2, 3, 4}); got != 10 {
		t.Errorf("SumSlice = %v, want 10", got)
	}
	if got := SumSlice(nil); got != 0 {
		t.Errorf("SumSlice(nil) = %v, want 0", got)
	}
}
