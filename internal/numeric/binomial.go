package numeric

import (
	"fmt"
	"math"
)

// BinomialLogPMF returns ln(P[X = k]) for X ~ Binomial(n, p).
// It handles the boundary probabilities p = 0 and p = 1 exactly.
func BinomialLogPMF(n, k int, p float64) float64 {
	if n < 0 || k < 0 || k > n {
		return math.Inf(-1)
	}
	switch {
	case p <= 0:
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	case p >= 1:
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

// BinomialPMF returns P[X = k] for X ~ Binomial(n, p).
func BinomialPMF(n, k int, p float64) float64 {
	return math.Exp(BinomialLogPMF(n, k, p))
}

// BinomialCDF returns P[X <= k] for X ~ Binomial(n, p), summing the PMF with
// compensated accumulation. For k >= n it returns exactly 1.
func BinomialCDF(n, k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	var sum Kahan
	for i := 0; i <= k; i++ {
		sum.Add(BinomialPMF(n, i, p))
	}
	return Clamp01(sum.Sum())
}

// BinomialTail returns P[X >= k] for X ~ Binomial(n, p). For numerical
// stability it sums whichever side of the distribution has fewer terms.
func BinomialTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	if k > n/2 {
		var sum Kahan
		for i := k; i <= n; i++ {
			sum.Add(BinomialPMF(n, i, p))
		}
		return Clamp01(sum.Sum())
	}
	return Clamp01(1 - BinomialCDF(n, k-1, p))
}

// BinomialMean returns the mean n*p of Binomial(n, p).
func BinomialMean(n int, p float64) float64 { return float64(n) * p }

// BinomialVariance returns the variance n*p*(1-p) of Binomial(n, p).
func BinomialVariance(n int, p float64) float64 { return float64(n) * p * (1 - p) }

// BinomialQuantile returns the smallest k with P[X <= k] >= q for
// X ~ Binomial(n, p). It returns an error for q outside (0, 1].
func BinomialQuantile(n int, p, q float64) (int, error) {
	if q <= 0 || q > 1 {
		return 0, fmt.Errorf("binomial quantile q=%v: %w", q, ErrDomain)
	}
	var cdf Kahan
	for k := 0; k <= n; k++ {
		cdf.Add(BinomialPMF(n, k, p))
		if cdf.Sum() >= q {
			return k, nil
		}
	}
	return n, nil
}
