package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogFactorialSmall(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880}
	for n, w := range want {
		got := math.Exp(LogFactorial(n))
		if !AlmostEqual(got, w, 1e-9, 1e-12) {
			t.Errorf("exp(LogFactorial(%d)) = %v, want %v", n, got, w)
		}
	}
}

func TestLogFactorialNegative(t *testing.T) {
	if !math.IsNaN(LogFactorial(-1)) {
		t.Error("LogFactorial(-1) should be NaN")
	}
}

func TestChooseAgainstExact(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for k := 0; k <= n; k++ {
			exact, err := ChooseInt64(n, k)
			if err != nil {
				t.Fatalf("ChooseInt64(%d,%d): %v", n, k, err)
			}
			got := Choose(n, k)
			if !AlmostEqual(got, float64(exact), 0.5, 1e-10) {
				t.Errorf("Choose(%d,%d) = %v, want %d", n, k, got, exact)
			}
		}
	}
}

func TestChooseEdgeCases(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{5, -1, 0},
		{5, 6, 0},
		{0, 0, 1},
		{7, 0, 1},
		{7, 7, 1},
	}
	for _, tt := range tests {
		if got := Choose(tt.n, tt.k); got != tt.want {
			t.Errorf("Choose(%d,%d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
	if !math.IsNaN(LogChoose(-1, 0)) {
		t.Error("LogChoose(-1,0) should be NaN")
	}
}

func TestChooseInt64Overflow(t *testing.T) {
	if _, err := ChooseInt64(200, 100); err == nil {
		t.Error("ChooseInt64(200,100) should overflow")
	}
	if _, err := ChooseInt64(-1, 0); err == nil {
		t.Error("ChooseInt64(-1,0) should error")
	}
}

func TestChooseSymmetryProperty(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n := int(n8 % 60)
		k := int(k8) % (n + 1)
		return AlmostEqual(Choose(n, k), Choose(n, n-k), 1e-12, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPascalIdentityProperty(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n := 1 + int(n8%50)
		k := 1 + int(k8)%n
		lhs := Choose(n, k)
		rhs := Choose(n-1, k-1) + Choose(n-1, k)
		return AlmostEqual(lhs, rhs, 1e-6, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogSumExp(t *testing.T) {
	xs := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got := math.Exp(LogSumExp(xs)); !AlmostEqual(got, 6, 1e-12, 1e-12) {
		t.Errorf("LogSumExp = %v, want 6", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("LogSumExp(nil) should be -Inf")
	}
	// Large offsets must not overflow.
	xs = []float64{1000, 1000}
	if got := LogSumExp(xs); !AlmostEqual(got, 1000+math.Ln2, 1e-9, 1e-12) {
		t.Errorf("LogSumExp large = %v", got)
	}
}

func TestClamp01(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{-0.1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.1, 1},
	}
	for _, tt := range tests {
		if got := Clamp01(tt.in); got != tt.want {
			t.Errorf("Clamp01(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1, 0, 0) {
		t.Error("identical values must compare equal")
	}
	if !AlmostEqual(1, 1+1e-13, 0, 1e-12) {
		t.Error("relative tolerance should accept tiny drift")
	}
	if AlmostEqual(1, 2, 0.5, 0.1) {
		t.Error("1 and 2 should not be almost equal")
	}
}

func TestWithinULP(t *testing.T) {
	if !WithinULP(1.0, math.Nextafter(1.0, 2.0), 1) {
		t.Error("adjacent floats are within 1 ulp")
	}
	if WithinULP(1.0, 1.5, 4) {
		t.Error("1.0 and 1.5 are far apart")
	}
	if WithinULP(math.NaN(), 1, 1000) {
		t.Error("NaN compares false")
	}
	if !WithinULP(0.0, math.Copysign(0, -1), 0) {
		t.Error("+0 and -0 are equal")
	}
	if WithinULP(-1.0, 1.0, 1<<20) {
		t.Error("opposite signs compare false")
	}
}
