package numeric

import (
	"math"
	"testing"
)

// FuzzBinomialPMF checks PMF range and the CDF/tail complement over
// arbitrary (n, k, p).
func FuzzBinomialPMF(f *testing.F) {
	f.Add(10, 3, 0.5)
	f.Add(240, 5, 0.0042)
	f.Add(1, 0, 1.0)
	f.Add(0, 0, 0.0)
	f.Fuzz(func(t *testing.T, n, k int, p float64) {
		if n < 0 || n > 2000 || math.IsNaN(p) {
			t.Skip()
		}
		p = math.Abs(math.Mod(p, 1))
		v := BinomialPMF(n, k, p)
		if math.IsNaN(v) || v < 0 || v > 1 {
			t.Fatalf("BinomialPMF(%d, %d, %v) = %v", n, k, p, v)
		}
		cdf := BinomialCDF(n, k, p)
		tail := BinomialTail(n, k+1, p)
		if math.Abs(cdf+tail-1) > 1e-8 {
			t.Fatalf("CDF %v + tail %v != 1", cdf, tail)
		}
	})
}

// FuzzLogChoose checks the Pascal identity in log space.
func FuzzLogChoose(f *testing.F) {
	f.Add(10, 3)
	f.Add(500, 250)
	f.Fuzz(func(t *testing.T, n, k int) {
		if n < 1 || n > 5000 || k < 1 || k > n {
			t.Skip()
		}
		lhs := Choose(n, k)
		rhs := Choose(n-1, k-1) + Choose(n-1, k)
		if math.IsInf(lhs, 1) || math.IsInf(rhs, 1) {
			t.Skip() // overflow regime; log-space values remain usable
		}
		if !AlmostEqual(lhs, rhs, 1e-6, 1e-9) {
			t.Fatalf("Pascal identity violated at (%d, %d): %v vs %v", n, k, lhs, rhs)
		}
	})
}
