package numeric

// Kahan is a compensated (Kahan-Babuska) accumulator. The zero value is an
// empty sum ready to use. It keeps a running compensation term so that long
// sums of small probabilities do not lose mass to rounding.
type Kahan struct {
	sum float64
	c   float64
}

// Add accumulates x into the sum.
func (k *Kahan) Add(x float64) {
	t := k.sum + x
	if abs(k.sum) >= abs(x) {
		k.c += (k.sum - t) + x
	} else {
		k.c += (x - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *Kahan) Sum() float64 { return k.sum + k.c }

// Reset clears the accumulator back to an empty sum.
func (k *Kahan) Reset() { k.sum, k.c = 0, 0 }

// SumSlice returns the compensated sum of xs.
func SumSlice(xs []float64) float64 {
	var k Kahan
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
