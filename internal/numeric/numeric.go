// Package numeric provides numerically stable scalar building blocks used
// throughout the analysis: log-space combinatorics, binomial probabilities,
// compensated summation, and tolerant float comparison.
//
// The group-based detection model multiplies binomial coefficients with very
// small area ratios (the ONR scenario has per-sensor per-period presence
// probabilities around 1e-3 and N up to a few hundred), so every probability
// here is assembled in log space and exponentiated once at the end.
package numeric

import (
	"errors"
	"math"
)

// ErrDomain reports arguments outside a function's mathematical domain.
var ErrDomain = errors.New("numeric: argument outside domain")

// LogGamma returns ln(Gamma(x)) for x > 0.
func LogGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// LogFactorial returns ln(n!) for n >= 0.
func LogFactorial(n int) float64 {
	if n < 0 {
		return math.NaN()
	}
	return LogGamma(float64(n) + 1)
}

// LogChoose returns ln(C(n, k)). It returns -Inf when the coefficient is
// zero (k < 0 or k > n) and NaN for n < 0.
func LogChoose(n, k int) float64 {
	if n < 0 {
		return math.NaN()
	}
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Choose returns C(n, k) as a float64. Overflows to +Inf for very large
// arguments rather than wrapping, which is what the truncated enumeration
// in the S-approach needs.
func Choose(n, k int) float64 {
	return math.Exp(LogChoose(n, k))
}

// ChooseInt64 returns C(n, k) as an exact int64, or an error when the value
// does not fit. It is used by tests to cross-check the float path.
func ChooseInt64(n, k int) (int64, error) {
	if n < 0 {
		return 0, ErrDomain
	}
	if k < 0 || k > n {
		return 0, nil
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 1; i <= k; i++ {
		hi := int64(n - k + i)
		// c = c * hi / i, keeping intermediate values exact.
		g := gcd64(hi, int64(i))
		hi /= g
		div := int64(i) / g
		g = gcd64(c, div)
		c /= g
		div /= g
		if div != 1 {
			return 0, ErrDomain
		}
		if c > math.MaxInt64/hi {
			return 0, ErrDomain
		}
		c *= hi
	}
	return c, nil
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LogSumExp returns ln(sum(exp(xs))) computed stably. An empty slice yields
// -Inf (the log of zero).
func LogSumExp(xs []float64) float64 {
	maxv := math.Inf(-1)
	for _, x := range xs {
		if x > maxv {
			maxv = x
		}
	}
	if math.IsInf(maxv, -1) {
		return maxv
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - maxv)
	}
	return maxv + math.Log(sum)
}

// Clamp01 clips x into [0, 1]. Probabilities assembled from many float
// operations can stray a few ulps outside the unit interval.
func Clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

// AlmostEqual reports whether a and b agree within absolute tolerance atol
// or relative tolerance rtol, whichever is looser.
func AlmostEqual(a, b, atol, rtol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= atol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rtol*scale
}

// WithinULP reports whether a and b are within n units in the last place.
func WithinULP(a, b float64, n uint) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	if (a < 0) != (b < 0) {
		return a == 0 && b == 0
	}
	ia := int64(math.Float64bits(math.Abs(a)))
	ib := int64(math.Float64bits(math.Abs(b)))
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return uint64(d) <= uint64(n)
}
