package gbd

import (
	"context"

	"github.com/groupdetect/gbd/internal/detect"
	"github.com/groupdetect/gbd/internal/geom"
	"github.com/groupdetect/gbd/internal/sim"
	"github.com/groupdetect/gbd/internal/target"
)

// Point is a planar location in meters.
type Point = geom.Point

// TargetModel generates target tracks for the simulator (SimConfig.Model).
type TargetModel = target.Model

// StraightTarget returns the constant-speed straight-line motion model the
// analysis assumes, at the scenario's speed.
func StraightTarget(p Params) TargetModel {
	return target.Straight{Step: p.Vt()}
}

// RandomWalkTarget returns the paper's Section-4 random-walk model: each
// period the heading changes by a uniform angle within ±maxTurn radians.
// The paper's configuration uses maxTurn = pi/4.
func RandomWalkTarget(p Params, maxTurn float64) TargetModel {
	return target.RandomWalk{Step: p.Vt(), MaxTurn: maxTurn}
}

// WaypointTarget returns a scripted patrol path followed at the scenario's
// speed; the target parks at the final waypoint.
func WaypointTarget(p Params, points []Point) TargetModel {
	return target.Waypoints{Step: p.Vt(), Points: points}
}

// VariableSpeedTarget returns the future-work motion model: straight
// heading with per-period speed drawn uniformly from [vMin, vMax] m/s.
func VariableSpeedTarget(p Params, vMin, vMax float64) TargetModel {
	sec := p.T.Seconds()
	return target.VariableSpeed{MinStep: vMin * sec, MaxStep: vMax * sec}
}

// TOptions configures the Temporal-approach demonstrator; TResult is its
// outcome (including the peak state count that motivates the
// M-S-approach).
type (
	TOptions = detect.TOptions
	TResult  = detect.TResult
)

// AnalyzeT runs the Temporal approach from Section 3.2 — the formulation
// the paper rejects for state explosion. Where feasible its result equals
// Analyze's exactly; on larger ms it fails with detect.ErrStateExplosion,
// reproducing the paper's argument. Useful mainly for studying the state
// growth via TResult.PeakStates.
func AnalyzeT(p Params, opt TOptions) (*TResult, error) {
	return detect.TApproach(p, opt)
}

// LatencyCDF is the analytical distribution of detection delay.
type LatencyCDF = detect.LatencyCDF

// Latency computes P[detected by period m] for m = 1..M: the time profile
// of the K-of-M rule, whose final point is the paper's detection
// probability.
func Latency(p Params, opt MSOptions) (LatencyCDF, error) {
	return detect.DetectionLatency(p, opt)
}

// LatencyCtx is Latency under a context: cancellation is observed between
// per-period window evaluations, so a caller with an expired deadline
// waits at most one M-S-approach run. A run that completes is identical
// to Latency.
func LatencyCtx(ctx context.Context, p Params, opt MSOptions) (LatencyCDF, error) {
	return detect.DetectionLatencyCtx(ctx, p, opt)
}

// RequiredSensors returns the smallest N in [1, nMax] whose analytical
// detection probability reaches targetProb — the deployment-sizing
// primitive.
func RequiredSensors(p Params, targetProb float64, nMax int, opt MSOptions) (int, error) {
	return detect.RequiredN(p, targetProb, nMax, opt)
}

// MultiResult summarizes a multi-target simulation campaign.
type MultiResult = sim.MultiResult

// SimulateMulti runs the multi-target simulator: targets tracks kept at
// least minSep apart, each judged independently against the K-of-M rule
// (the paper's "our analysis still holds per target" claim, made
// testable).
func SimulateMulti(cfg SimConfig, targets int, minSep float64) (*MultiResult, error) {
	return sim.RunMulti(cfg, targets, minSep)
}

// MissionBounds brackets the detection probability when the target is
// present for missionPeriods (>= M) and ANY sliding M-window of K reports
// triggers: lower bound = single-window analysis, upper bound = window
// union bound. Set SimConfig.MissionPeriods to measure the true value.
func MissionBounds(p Params, missionPeriods int, opt MSOptions) (lo, hi float64, err error) {
	return detect.MissionBounds(p, missionPeriods, opt)
}
