package gbd_test

import (
	"math"
	"testing"

	gbd "github.com/groupdetect/gbd"
	"github.com/groupdetect/gbd/internal/field"
	"github.com/groupdetect/gbd/internal/geom"
)

func TestAnalyzeMixedFacade(t *testing.T) {
	p := gbd.Defaults()
	classes := []gbd.SensorClass{
		{Count: 90, Rs: 800, Pd: 0.85},
		{Count: 15, Rs: 2500, Pd: 0.95},
	}
	ana, err := gbd.AnalyzeMixed(p, classes, gbd.MSOptions{Gh: 4, G: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ana.DetectionProb <= 0 || ana.DetectionProb >= 1 {
		t.Errorf("mixed prob = %v", ana.DetectionProb)
	}
	simRes, err := gbd.SimulateMixed(gbd.SimConfig{Params: p, Trials: 1500, Seed: 5}, classes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(simRes.DetectionProb-ana.DetectionProb) > 0.05 {
		t.Errorf("mixed sim %v vs analysis %v", simRes.DetectionProb, ana.DetectionProb)
	}
}

func TestSensitivitiesFacade(t *testing.T) {
	out, err := gbd.Sensitivities(gbd.Defaults(), gbd.MSOptions{Gh: 3, G: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Errorf("parameters = %d, want 5", len(out))
	}
}

func TestCoverageMapFacade(t *testing.T) {
	p := gbd.Defaults()
	rng := field.NewRand(4)
	sensors, err := field.Uniform(p.N, geom.Square(p.FieldSide), rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := gbd.NewCoverageMap(p, sensors, 500)
	if err != nil {
		t.Fatal(err)
	}
	void := m.VoidFraction()
	if void < 0.4 || void > 0.95 {
		t.Errorf("ONR void fraction = %v, expected substantial voids", void)
	}
	breach, err := m.MaximalBreach(p.Rs)
	if err != nil {
		t.Fatal(err)
	}
	if !breach.Undetectable {
		t.Error("sparse ONR field should have an instantaneous-detection-free corridor")
	}
	// The corridor exists, yet the group-detection analysis still catches
	// the target with high probability — the paper's whole point.
	ana, err := gbd.Analyze(p, gbd.MSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ana.DetectionProb < 0.5 {
		t.Errorf("group detection should still perform: %v", ana.DetectionProb)
	}
}

func TestDutyCycleFacade(t *testing.T) {
	p := gbd.Defaults()
	duty, err := p.WithDutyCycle(0.5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := gbd.Analyze(p, gbd.MSOptions{Gh: 3, G: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := gbd.Analyze(duty, gbd.MSOptions{Gh: 3, G: 3})
	if err != nil {
		t.Fatal(err)
	}
	if b.DetectionProb >= a.DetectionProb {
		t.Errorf("duty cycling should cost detection: %v vs %v", b.DetectionProb, a.DetectionProb)
	}
}

func TestCalibratePdFacade(t *testing.T) {
	p := gbd.Defaults()
	pd, err := gbd.CalibratePd(p, 0.04, 200_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pd <= 0 || pd >= 1 {
		t.Fatalf("calibrated Pd = %v", pd)
	}
	// Simulation under the exposure model vs analysis at the calibrated Pd.
	cfg := gbd.SimConfig{Params: p, Trials: 2500, Seed: 8, ExposureLambda: 0.04}
	simRes, err := gbd.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cal := p
	cal.Pd = pd
	ana, err := gbd.Analyze(cal, gbd.MSOptions{Gh: 4, G: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(simRes.DetectionProb - ana.DetectionProb); d > 0.06 {
		t.Errorf("exposure sim %v vs calibrated analysis %v", simRes.DetectionProb, ana.DetectionProb)
	}
	if _, err := gbd.CalibratePd(p, -1, 100, 1); err == nil {
		t.Error("negative lambda should fail")
	}
	if _, err := gbd.CalibratePd(p, 0.04, 0, 1); err == nil {
		t.Error("zero samples should fail")
	}
}
