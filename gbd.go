// Package gbd analyzes and simulates group-based detection in sparse
// wireless sensor networks. It implements the models from
//
//	Zhang, Zhou, Son, Stankovic, Whitehouse.
//	"Performance Analysis of Group Based Detection for Sparse Sensor
//	Networks." IEEE ICDCS 2008.
//
// A sparse network covers only a fraction of the field with sensing disks
// but stays connected through multi-hop communication. To suppress node
// level false alarms, the system declares a detection only when at least K
// reports arrive within M sensing periods. This package answers the central
// design question — what is the probability a moving target is detected? —
// three ways:
//
//   - Analyze: the Markov-chain-based Spatial approach (M-S-approach), the
//     paper's contribution: exact per-NEDR report distributions assembled
//     with a Markov chain, running in milliseconds.
//   - AnalyzeS: the Spatial approach over the whole aggregate region, the
//     paper's stepping stone (exponential in its truncation bound when run
//     with the literal Algorithm 1).
//   - Simulate: the Monte Carlo event-detection simulator used to validate
//     the model.
//
// The extension requiring reports from at least H distinct nodes
// (AnalyzeNodes), the accuracy planner behind Figure 8 (PlanAccuracy), and
// the false-alarm-driven lower bound on K (MinK) round out the paper's
// Section 4 and future-work items.
//
// Quick start:
//
//	p := gbd.Defaults()            // the paper's ONR scenario
//	res, err := gbd.Analyze(p, gbd.MSOptions{})
//	if err != nil { ... }
//	fmt.Println(res.DetectionProb) // PM[X >= K]
//
//	simRes, err := gbd.Simulate(gbd.SimConfig{Params: p, Trials: 10000})
//	if err != nil { ... }
//	fmt.Println(simRes.DetectionProb, simRes.CI)
package gbd

import (
	"context"

	"github.com/groupdetect/gbd/internal/detect"
	"github.com/groupdetect/gbd/internal/dist"
	"github.com/groupdetect/gbd/internal/falsealarm"
	"github.com/groupdetect/gbd/internal/field"
	"github.com/groupdetect/gbd/internal/infer"
	"github.com/groupdetect/gbd/internal/sim"
)

// Params describes a surveillance scenario: field, sensors, target and the
// K-of-M group detection rule. See the field documentation in the type.
type Params = detect.Params

// MSOptions configures the M-S-approach analysis (truncation bounds,
// evaluator, normalization).
type MSOptions = detect.MSOptions

// MSResult is the M-S-approach outcome: the report-count distribution and
// the detection probability.
type MSResult = detect.MSResult

// SOptions configures the S-approach analysis.
type SOptions = detect.SOptions

// SResult is the S-approach outcome.
type SResult = detect.SResult

// NodesResult is the outcome of the distinct-nodes extension analysis.
type NodesResult = detect.NodesResult

// Evaluator selects how the Markov chain of the M-S-approach is evaluated.
type Evaluator = detect.Evaluator

// Evaluation strategies for MSOptions.Evaluator.
const (
	// EvaluatorConvolution reduces the shift-kernel chain to convolutions
	// (fast, default).
	EvaluatorConvolution = detect.EvaluatorConvolution
	// EvaluatorMatrix multiplies the literal Eq. (12) transition matrices.
	EvaluatorMatrix = detect.EvaluatorMatrix
)

// PMF is a distribution over report counts.
type PMF = dist.PMF

// SimConfig configures the Monte Carlo simulator.
type SimConfig = sim.Config

// SimResult aggregates a simulation campaign.
type SimResult = sim.Result

// TrialResult is a fully detailed single simulation trial.
type TrialResult = sim.TrialResult

// InferOptions tunes the closed-loop failure inferencer (SimConfig.Infer):
// a per-sensor sequential probability ratio test over the report stream
// that declares a sensor dead only when its silence is statistically
// inconsistent with the delivery rate the link layer is observing. The
// zero value uses alpha = beta = 0.01 and resolves the per-period report
// probability from the scenario (1 with SimConfig.Beacons, the paper's
// p_indi otherwise).
type InferOptions = infer.Options

// InferStats scores the failure inferencer against the injected ground
// truth (SimResult.Infer): final and per-period confusion, declaration
// and retraction counts, time-to-detect, and the link telemetry the
// engine observed.
type InferStats = sim.InferStats

// InferConfusion is a dead-vs-alive confusion matrix with "declared
// dead" as the positive class.
type InferConfusion = infer.Confusion

// ClosedLoopPoint feeds a truth/inference knob pair through the same
// analytical degradation model, pairing the omniscient detection
// probability with the inference-driven one (infer.DegradationPair).
func ClosedLoopPoint(p Params, truthFrac, inferredFrac, pDeliver, pDeliverHat float64, opt MSOptions) (infer.DegradationPair, error) {
	return infer.ClosedLoopPoint(p, truthFrac, inferredFrac, pDeliver, pDeliverHat, opt)
}

// Confinement selects the simulator's field-border policy.
type Confinement = sim.Confinement

// Border policies for SimConfig.Confine.
const (
	// ConfineRejection keeps the whole track inside the field (matches the
	// analysis; default).
	ConfineRejection = sim.ConfineRejection
	// ConfineNone lets tracks exit the field.
	ConfineNone = sim.ConfineNone
)

// RNGScheme selects how the simulator derives each trial's random
// stream (SimConfig.RNG).
type RNGScheme = field.RNGScheme

// Trial RNG schemes for SimConfig.RNG.
const (
	// SchemeLegacy reseeds a rand.Rand per trial from a SplitMix64-derived
	// seed (the original scheme; default, preserves historical goldens).
	SchemeLegacy = field.SchemeLegacy
	// SchemePhilox derives each trial's stream from the counter-based
	// Philox4x32-10 generator keyed by the campaign seed: O(1) stream
	// setup and batchable trials, with different (equally valid) draws
	// than SchemeLegacy.
	SchemePhilox = field.SchemePhilox
)

// ParseRNGScheme maps a scheme name ("legacy", "philox", or "" for the
// legacy default) to its RNGScheme, as the binaries' -rng flags do.
func ParseRNGScheme(name string) (RNGScheme, error) { return field.ParseRNGScheme(name) }

// FalseAlarmModel is the node-level Bernoulli false alarm model used by the
// K lower-bound machinery.
type FalseAlarmModel = falsealarm.Model

// Defaults returns the paper's ONR parameter set: a 32 km x 32 km field,
// Rs = 1 km, 1-minute periods, Pd = 0.9, the 5-of-20 rule, N = 120 sensors
// and a 10 m/s target.
func Defaults() Params { return detect.Defaults() }

// Analyze runs the M-S-approach (Section 3.4): the probability that a
// straight-line constant-speed target is detected under the K-of-M rule,
// together with the full distribution of report counts.
func Analyze(p Params, opt MSOptions) (*MSResult, error) {
	return detect.MSApproach(p, opt)
}

// AnalyzeCtx is Analyze under a context, for callers that serve analyses
// with deadlines (the gbd-server request path). The analysis itself runs
// in milliseconds and is not interruptible mid-chain; the ctx is checked
// before the computation starts and before the result is returned, so an
// expired deadline yields ctx.Err() rather than a stale result.
func AnalyzeCtx(ctx context.Context, p Params, opt MSOptions) (*MSResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := detect.MSApproach(p, opt)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// AnalyzeS runs the S-approach (Section 3.3) over the whole aggregate
// region. Set SOptions.Literal for the paper's exponential Algorithm 1.
func AnalyzeS(p Params, opt SOptions) (*SResult, error) {
	return detect.SApproach(p, opt)
}

// AnalyzeNodes runs the Section-4 extension: at least K reports from at
// least h distinct nodes within M periods.
func AnalyzeNodes(p Params, h int, opt MSOptions) (*NodesResult, error) {
	return detect.MSApproachNodes(p, h, opt)
}

// AnalyzeNodesCtx is AnalyzeNodes under a context, with the same
// before/after deadline checks as AnalyzeCtx.
func AnalyzeNodesCtx(ctx context.Context, p Params, h int, opt MSOptions) (*NodesResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := detect.MSApproachNodes(p, h, opt)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// SinglePeriod returns the M = 1 preliminary distribution of reports in one
// sensing period (Eq. 1), and SinglePeriodTail the corresponding
// P1[X >= k] (Eq. 2).
func SinglePeriod(p Params) (PMF, error) { return detect.SinglePeriod(p) }

// SinglePeriodTail returns P1[X >= k] for a single sensing period (Eq. 2).
func SinglePeriodTail(p Params, k int) (float64, error) {
	return detect.SinglePeriodTail(p, k)
}

// Simulate runs the Monte Carlo event-detection simulator.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// SimulateCtx is Simulate under a context: cancellation stops the campaign
// early with ctx.Err(); a run that completes is bit-identical to Simulate.
func SimulateCtx(ctx context.Context, cfg SimConfig) (*SimResult, error) {
	return sim.RunCtx(ctx, cfg)
}

// SimulateTrial runs one fully detailed simulation trial (deployment,
// track, per-period report counts).
func SimulateTrial(cfg SimConfig, trial int) (*TrialResult, error) {
	return sim.RunTrial(cfg, trial)
}

// AccuracyPlan is the Figure 8 planning output: the smallest truncation
// bounds meeting a target analysis accuracy.
type AccuracyPlan struct {
	// Gh and G are the M-S-approach Head and Body/Tail bounds.
	Gh, G int
	// SG is the S-approach bound over the whole ARegion.
	SG int
	// EtaMS and EtaS are the predicted accuracies (Eqs. 14 and 5) at those
	// bounds.
	EtaMS, EtaS float64
}

// PlanAccuracy computes the minimal truncation bounds for a target analysis
// accuracy (Figure 8; the paper uses 0.99).
func PlanAccuracy(p Params, target float64) (AccuracyPlan, error) {
	gh, err := detect.RequiredHeadG(p, target)
	if err != nil {
		return AccuracyPlan{}, err
	}
	g, err := detect.RequiredBodyG(p, target)
	if err != nil {
		return AccuracyPlan{}, err
	}
	sg, err := detect.RequiredSG(p, target)
	if err != nil {
		return AccuracyPlan{}, err
	}
	return AccuracyPlan{
		Gh: gh, G: g, SG: sg,
		EtaMS: detect.EtaMS(p, gh, g),
		EtaS:  detect.EtaS(p, sg),
	}, nil
}

// MinK returns the smallest K whose system-level false alarm probability
// over the horizon (in sensing periods) stays within budget, for the given
// per-sensor per-period false alarm probability — the paper's future-work
// item, answered with a union-bound guarantee.
func MinK(p Params, falseAlarmP float64, horizon int, budget float64) (int, error) {
	m := falsealarm.Model{N: p.N, Pf: falseAlarmP, M: p.M}
	return falsealarm.KMin(m, horizon, budget)
}

// Comparison pairs the analytical and simulated detection probabilities for
// one scenario.
type Comparison struct {
	// Analysis is the normalized M-S-approach probability; Simulation the
	// Monte Carlo estimate with its 95% interval bounds.
	Analysis   float64
	Simulation float64
	CILo, CIHi float64
	// AbsError is |Analysis - Simulation|.
	AbsError float64
}

// Compare runs both the analysis and the simulator on the same scenario —
// the validation loop of Section 4 as a one-liner.
func Compare(p Params, trials int, seed int64) (Comparison, error) {
	ana, err := detect.MSApproach(p, MSOptions{})
	if err != nil {
		return Comparison{}, err
	}
	res, err := sim.Run(sim.Config{Params: p, Trials: trials, Seed: seed})
	if err != nil {
		return Comparison{}, err
	}
	diff := ana.DetectionProb - res.DetectionProb
	if diff < 0 {
		diff = -diff
	}
	return Comparison{
		Analysis:   ana.DetectionProb,
		Simulation: res.DetectionProb,
		CILo:       res.CI.Lo,
		CIHi:       res.CI.Hi,
		AbsError:   diff,
	}, nil
}
