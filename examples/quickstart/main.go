// Quickstart: analyze a sparse-sensor-network scenario with the
// M-S-approach, validate the number with the Monte Carlo simulator, and
// inspect how the detection probability reacts to the design knobs.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	gbd "github.com/groupdetect/gbd"
)

func main() {
	// The paper's ONR scenario: a 32 km x 32 km undersea field, 1 km
	// sensing range, 1-minute sensing periods, a 10 m/s target, and the
	// 5-of-20 group detection rule.
	p := gbd.Defaults()
	fmt.Printf("scenario: N=%d sensors, %d-of-%d rule, ms=%d, sensing coverage %.1f%%\n",
		p.N, p.K, p.M, p.Ms(), 100*p.Density())

	// Analytical detection probability (milliseconds).
	ana, err := gbd.Analyze(p, gbd.MSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis:   P[detect] = %.4f (truncation gh=%d g=%d, retained mass %.4f)\n",
		ana.DetectionProb, ana.Gh, ana.G, ana.Mass)

	// Monte Carlo validation (the paper's Section 4 loop).
	res, err := gbd.Simulate(gbd.SimConfig{Params: p, Trials: 10000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation: P[detect] = %.4f (95%% CI [%.4f, %.4f], %d trials)\n",
		res.DetectionProb, res.CI.Lo, res.CI.Hi, res.Trials)

	// Design-space exploration: the analysis is cheap enough to sweep.
	fmt.Println("\nhow many sensors buy how much detection?")
	for _, n := range []int{60, 120, 180, 240} {
		r, err := gbd.Analyze(p.WithN(n), gbd.MSOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  N=%3d -> %.4f\n", n, r.DetectionProb)
	}

	fmt.Println("\nhow does the report threshold trade detection vs false alarms?")
	for _, k := range []int{3, 5, 7, 9} {
		r, err := gbd.Analyze(p.WithK(k), gbd.MSOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  K=%d -> %.4f\n", k, r.DetectionProb)
	}

	// And the single-period preliminary (Eq. 2) showing why M = 1 cannot
	// work in a sparse field: even one report per period is uncommon.
	tail1, err := gbd.SinglePeriodTail(p, 1)
	if err != nil {
		log.Fatal(err)
	}
	tail2, err := gbd.SinglePeriodTail(p, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle period: P[>=1 report] = %.4f, P[>=2 reports] = %.4f — hence the multi-period rule\n",
		tail1, tail2)
}
