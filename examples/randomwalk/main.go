// Random-walk study: how far can the target's motion deviate from the
// straight line before the analytical model stops being useful? The paper
// (Figure 9(c)) shows the straight-line analysis stays within 2.4% of a
// [-45°, +45°]-per-minute random walk; this example sweeps the turn bound
// to map out where that breaks down.
//
// Run with:
//
//	go run ./examples/randomwalk
package main

import (
	"fmt"
	"log"
	"math"

	gbd "github.com/groupdetect/gbd"
	"github.com/groupdetect/gbd/internal/target"
)

func main() {
	p := gbd.Defaults()
	ana, err := gbd.Analyze(p, gbd.MSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("straight-line analysis: P[detect] = %.4f\n\n", ana.DetectionProb)
	fmt.Println("turn bound   simulated P   analysis - sim")

	for _, deg := range []float64{0, 15, 45, 90, 135, 180} {
		cfg := gbd.SimConfig{
			Params: p,
			Trials: 6000,
			Seed:   int64(100 + deg),
		}
		if deg > 0 {
			cfg.Model = target.RandomWalk{Step: p.Vt(), MaxTurn: deg * math.Pi / 180}
		}
		res, err := gbd.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ±%3.0f°      %.4f        %+.4f\n",
			deg, res.DetectionProb, ana.DetectionProb-res.DetectionProb)
	}

	fmt.Println("\nreading: sharper turning shrinks the swept area (the ARegion), so the")
	fmt.Println("straight-line analysis is an upper bound whose gap grows with the turn")
	fmt.Println("bound; at the paper's ±45° the gap stays within a few percent.")
}
