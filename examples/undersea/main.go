// Undersea surveillance: the paper's headline application and the source
// of its parameter set. Acoustic sensors cost thousands of dollars each, so
// the deployment is sparse by necessity; submarines are slow and the
// surveillance horizon is long. This example works through the full design
// loop: detection probability across target speeds, the exact report
// threshold for a false alarm budget (the paper's future-work item), the
// accuracy plan for the analysis itself, and the acoustic multi-hop
// delivery check.
//
// Run with:
//
//	go run ./examples/undersea
package main

import (
	"fmt"
	"log"
	"time"

	gbd "github.com/groupdetect/gbd"
	"github.com/groupdetect/gbd/internal/falsealarm"
	"github.com/groupdetect/gbd/internal/field"
	"github.com/groupdetect/gbd/internal/geom"
	"github.com/groupdetect/gbd/internal/netsim"
)

func main() {
	p := gbd.Defaults() // the ONR parameter set
	fmt.Printf("undersea sector: %d acoustic sensors in %.0f km x %.0f km, Rs=%.0f km\n",
		p.N, p.FieldSide/1000, p.FieldSide/1000, p.Rs/1000)

	// 1. Detection probability vs intruder speed. Slow intruders sweep
	// less new area per window, so they are harder to accumulate reports
	// on — the inverse of intuition from instantaneous detection.
	fmt.Println("\ndetection probability vs target speed (analysis):")
	for _, v := range []float64{2, 4, 6, 10} {
		res, err := gbd.Analyze(p.WithV(v), gbd.MSOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  V=%4.1f m/s (ms=%2d) -> %.4f\n", v, p.WithV(v).Ms(), res.DetectionProb)
	}

	// 2. Report threshold from a false alarm budget. Acoustic sensors in
	// ambient ship noise false-alarm at roughly 1e-4 per minute. We demand
	// at most a 1% chance of a false submarine alert per day.
	m := falsealarm.Model{N: p.N, Pf: 1e-4, M: p.M}
	k, err := falsealarm.KMin(m, 24*60, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfalse-alarm design: Pf=1e-4, budget 1%%/day -> K >= %d (paper's empirical choice: 5)\n", k)
	rate, err := falsealarm.SimulateRate(m, k, 24*60, falsealarm.SimOptions{
		FieldSide: p.FieldSide, Rs: p.Rs, MaxSpeed: p.V, Period: p.T,
		Gated: true, Trials: 200, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  simulated false-alert rate at K=%d with track gating: %.4f\n", k, rate)

	// 3. Detection with the chosen threshold, for the slow submarine.
	sub := p.WithV(4).WithK(k)
	res, err := gbd.Analyze(sub, gbd.MSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := gbd.Compare(sub, 10000, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n4 m/s submarine with K=%d: analysis %.4f, simulation %.4f (CI [%.4f, %.4f])\n",
		k, res.DetectionProb, cmp.Simulation, cmp.CILo, cmp.CIHi)

	// 4. How precise is the analysis itself? The Figure-8 plan.
	plan, err := gbd.PlanAccuracy(sub, 0.99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalysis accuracy plan: gh=%d g=%d gives etaMS=%.4f; "+
		"the S-approach would need G=%d sensors enumerated\n", plan.Gh, plan.G, plan.EtaMS, plan.SG)

	// 5. Acoustic delivery: 6 km acoustic modems, ~30 s per hop (slow
	// underwater propagation and low data rates). Does every sensor reach
	// the surface gateway at the center within one sensing period?
	rng := field.NewRand(21)
	nodes, err := field.Uniform(p.N, geom.Square(p.FieldSide), rng)
	if err != nil {
		log.Fatal(err)
	}
	gateway := geom.Point{X: p.FieldSide / 2, Y: p.FieldSide / 2}
	base := 0
	for i, nd := range nodes {
		if nd.Dist(gateway) < nodes[base].Dist(gateway) {
			base = i
		}
	}
	net, err := netsim.New(nodes, 6000, geom.Square(p.FieldSide))
	if err != nil {
		log.Fatal(err)
	}
	stats, err := net.Delivery(base, 30*time.Second, p.T)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nacoustic delivery (6 km modems, 30 s/hop, %v budget):\n", p.T)
	fmt.Printf("  connected components: %d; reachable %d/%d; max %d hops; within budget %d\n",
		net.Components(), stats.Reachable, stats.Nodes, stats.MaxHops, stats.WithinBudget)
	if stats.WithinBudget < stats.Reachable {
		fmt.Println("  -> some sensors need a longer sensing period or a second gateway")
	}
}
