// Border surveillance: the paper's motivating application. A strip of
// terrain is monitored by sparsely deployed cameras; crossers move roughly
// perpendicular to the border. This example sizes the deployment: it finds
// the cheapest sensor count meeting a detection-probability requirement,
// verifies the choice by simulating scripted crossings, and checks that
// every camera can report back to the command post within one sensing
// period.
//
// Run with:
//
//	go run ./examples/border
package main

import (
	"fmt"
	"log"
	"time"

	gbd "github.com/groupdetect/gbd"
	"github.com/groupdetect/gbd/internal/field"
	"github.com/groupdetect/gbd/internal/geom"
	"github.com/groupdetect/gbd/internal/netsim"
	"github.com/groupdetect/gbd/internal/target"
)

func main() {
	// A 24 km x 24 km border sector. Cameras see 800 m (night, obstacles),
	// sample once a minute, and individually detect an in-range crosser
	// with probability 0.8. A crosser walks at 1.5 m/s. Reports are
	// grouped with a 4-of-30 rule.
	p := gbd.Params{
		N:         0, // chosen below
		FieldSide: 24000,
		Rs:        800,
		V:         1.5,
		T:         time.Minute,
		Pd:        0.8,
		M:         30,
		K:         4,
	}

	// 1. Size the deployment analytically: smallest N with P[detect] >= 60%.
	const requirement = 0.60
	chosen := 0
	fmt.Println("sizing the deployment (analysis):")
	for n := 100; n <= 1000; n += 50 {
		res, err := gbd.Analyze(p.WithN(n), gbd.MSOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  N=%4d -> P[detect] = %.4f\n", n, res.DetectionProb)
		if res.DetectionProb >= requirement {
			chosen = n
			break
		}
	}
	if chosen == 0 {
		log.Fatal("requirement not reachable within the sweep")
	}
	p = p.WithN(chosen)
	fmt.Printf("chosen: N=%d cameras (coverage %.1f%% of the sector)\n\n", chosen, 100*p.Density())

	// 2. Validate with scripted crossings: the crosser enters at the south
	// edge and walks north through the sector.
	cross := target.Waypoints{
		Step: p.Vt(),
		Points: []geom.Point{
			{X: 12000, Y: 2000},
			{X: 11000, Y: 9000},
			{X: 12500, Y: 16000},
			{X: 12000, Y: 22000},
		},
	}
	res, err := gbd.Simulate(gbd.SimConfig{
		Params: p,
		Model:  cross,
		Trials: 5000,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scripted crossing simulation: P[detect] = %.4f (CI [%.4f, %.4f])\n",
		res.DetectionProb, res.CI.Lo, res.CI.Hi)

	// 3. Check the communication assumption: tall-antenna cameras reach
	// 8 km; the command post sits at the sector center. Can every camera
	// deliver a report within the 1-minute sensing period at ~5 s per hop?
	rng := field.NewRand(99)
	cams, err := field.Uniform(p.N, geom.Square(p.FieldSide), rng)
	if err != nil {
		log.Fatal(err)
	}
	post := geom.Point{X: p.FieldSide / 2, Y: p.FieldSide / 2}
	base := 0
	for i, c := range cams {
		if c.Dist(post) < cams[base].Dist(post) {
			base = i
		}
	}
	net, err := netsim.New(cams, 8000, geom.Square(p.FieldSide))
	if err != nil {
		log.Fatal(err)
	}
	stats, err := net.Delivery(base, 5*time.Second, p.T)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncommunication check (8 km radios, 5 s/hop, %v budget):\n", p.T)
	fmt.Printf("  reachable: %d/%d cameras, max %d hops, mean %.1f hops\n",
		stats.Reachable, stats.Nodes, stats.MaxHops, stats.MeanHops)
	fmt.Printf("  within one sensing period: %d cameras; greedy forwarding suffices for %d\n",
		stats.WithinBudget, stats.GreedyOK)

	// 4. Pick the report threshold from a false alarm budget: at most a 5%
	// chance of a false crossing alert per week.
	weekPeriods := 7 * 24 * 60
	k, err := gbd.MinK(p, 5e-5, weekPeriods, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	finalRes, err := gbd.Analyze(p.WithK(k), gbd.MSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfalse-alarm budget (5%%/week at Pf=5e-5): K >= %d, detection at that K = %.4f\n",
		k, finalRes.DetectionProb)
}
