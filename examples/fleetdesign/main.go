// Fleet design: a buyer's workflow for a heterogeneous deployment. A
// program office can buy cheap short-range sensors and a few expensive
// long-range arrays; this example compares pure and mixed fleets under a
// fixed budget, audits the winning deployment's coverage voids and breach
// corridors, checks sleep-scheduling savings, and reports which parameter
// is the strongest lever.
//
// Run with:
//
//	go run ./examples/fleetdesign
package main

import (
	"fmt"
	"log"

	gbd "github.com/groupdetect/gbd"
	"github.com/groupdetect/gbd/internal/field"
	"github.com/groupdetect/gbd/internal/geom"
)

func main() {
	base := gbd.Defaults() // field, target and 5-of-20 rule from the paper

	// A unit budget of 240: short-range sensors cost 1, long-range arrays
	// cost 8 (and see 2.5x farther with better electronics).
	type option struct {
		name    string
		classes []gbd.SensorClass
	}
	short := gbd.SensorClass{Count: 240, Rs: 1000, Pd: 0.9}
	long := gbd.SensorClass{Count: 30, Rs: 2500, Pd: 0.95}
	options := []option{
		{"240 short-range", []gbd.SensorClass{short}},
		{"30 long-range", []gbd.SensorClass{long}},
		{"120 short + 15 long", []gbd.SensorClass{
			{Count: 120, Rs: 1000, Pd: 0.9},
			{Count: 15, Rs: 2500, Pd: 0.95},
		}},
	}

	fmt.Println("same budget, three fleets (analysis + simulation):")
	best := options[0]
	bestP := 0.0
	for _, o := range options {
		ana, err := gbd.AnalyzeMixed(base, o.classes, gbd.MSOptions{Gh: 5, G: 5})
		if err != nil {
			log.Fatal(err)
		}
		simRes, err := gbd.SimulateMixed(gbd.SimConfig{Params: base, Trials: 4000, Seed: 2}, o.classes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s analysis %.4f  simulation %.4f\n", o.name, ana.DetectionProb, simRes.DetectionProb)
		if ana.DetectionProb > bestP {
			bestP = ana.DetectionProb
			best = o
		}
	}
	fmt.Printf("winner: %s (P = %.4f)\n\n", best.name, bestP)

	// Audit the winner's coverage: voids and worst-case corridors.
	rng := field.NewRand(31)
	var sensors []gbd.Point
	maxRs := 0.0
	for _, c := range best.classes {
		pts, err := field.Uniform(c.Count, geom.Square(base.FieldSide), rng)
		if err != nil {
			log.Fatal(err)
		}
		sensors = append(sensors, pts...)
		if c.Rs > maxRs {
			maxRs = c.Rs
		}
	}
	audit := base
	audit.Rs = maxRs // conservative: audit with the longest range
	m, err := gbd.NewCoverageMap(audit, sensors, 250)
	if err != nil {
		log.Fatal(err)
	}
	breach, err := m.MaximalBreach(maxRs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage audit: %.1f%% covered, %.1f%% double-covered, void %.1f%%\n",
		100*m.Fraction(1), 100*m.Fraction(2), 100*m.VoidFraction())
	fmt.Printf("maximal-breach corridor keeps %.0f m from every sensor (instantaneously evadable: %v)\n\n",
		breach.Distance, breach.Undetectable)

	// Sleep scheduling: how much detection does a 50% duty cycle cost?
	duty, err := base.WithDutyCycle(0.5)
	if err != nil {
		log.Fatal(err)
	}
	full, err := gbd.Analyze(base, gbd.MSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	half, err := gbd.Analyze(duty, gbd.MSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("duty cycling at N=%d: always-on P = %.4f, 50%% duty P = %.4f "+
		"(half the energy for %.0f%% of the detection)\n\n",
		base.N, full.DetectionProb, half.DetectionProb, 100*half.DetectionProb/full.DetectionProb)

	// Which lever moves detection most?
	sens, err := gbd.Sensitivities(base, gbd.MSOptions{Gh: 3, G: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("elasticities of P[detect] (+10%/-10% central differences):")
	for _, s := range sens {
		fmt.Printf("  %-10s %+.3f\n", s.Param, s.Elasticity)
	}
	fmt.Println("\nreading: in the sparse regime, range (via swept area) and field size")
	fmt.Println("dominate; doubling sensors is roughly linear; Pd matters less once")
	fmt.Println("the rule already accumulates reports across periods.")
}
